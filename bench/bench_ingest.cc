// Streaming-cohort ingest/delta bench: a synthetic cohort arrives as a
// stream of batches; after every batch the accumulated snapshot is
// re-analyzed twice — once warm through the cohort store's delta path
// (prior generation's centroids as the warm hint, warm restart count)
// and once cold from scratch with identical options. Reports ingest
// throughput, per-generation delta-vs-cold analysis times, and the
// steady-state speedup, alongside the identity gate that makes the
// delta path admissible: per generation the bench records whether the
// warm report is byte-identical to the cold one (gate 1) and whether
// the warm selection's composite is at least the cold one (gate 2 —
// the fallback the design allows when the hint redirects k-means
// trajectories). Emits BENCH_ingest.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/report.h"
#include "core/session.h"
#include "dataset/exam_log.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "service/cohort_store.h"

namespace {

using namespace adahealth;

bool SmokeMode() {
  const char* env = std::getenv("ADA_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The synthetic cohort's record table as an arrival-order raw batch.
std::vector<dataset::RawExamRecord> ToRaw(const dataset::ExamLog& log) {
  std::vector<dataset::RawExamRecord> rows;
  rows.reserve(log.num_records());
  for (const dataset::ExamRecord& record : log.records()) {
    dataset::RawExamRecord row;
    row.patient = record.patient;
    row.exam_type = log.dictionary().Name(record.exam_type);
    row.day = record.day;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Converged sweep: enough cold restarts and k-means iterations that
/// the cold run reliably finds the per-candidate optimum. That is the
/// regime where the store's identity gate is byte-exact (the warm
/// attempt ties the optimum instead of replacing it) and where the
/// delta path's saving is largest — the warm restart count replaces
/// all the cold restarts the hint makes redundant.
core::SessionOptions BenchOptions() {
  core::SessionOptions options;
  options.dataset_id = "stream";
  options.transform.sample_fraction = 0.5;
  options.partial.fractions = {0.5, 1.0};
  options.partial.ks = {3};
  options.partial.kmeans.max_iterations = 100;
  options.optimizer.candidate_ks =
      SmokeMode() ? std::vector<int32_t>{3, 4} : std::vector<int32_t>{3, 4, 5, 6};
  options.optimizer.cv_folds = SmokeMode() ? 4 : 5;
  options.optimizer.restarts = 10;
  options.optimizer.kmeans.max_iterations = 100;
  return options;
}

int Run() {
  common::WallTimer total_timer;
  std::printf("=== Streaming cohorts: ingest throughput and "
              "delta-vs-cold re-analysis ===\n");
  const int num_batches = SmokeMode() ? 3 : 6;
  dataset::CohortConfig config = dataset::TestScaleConfig();
  config.num_patients = SmokeMode() ? 200 : 2000;
  config.num_exam_types = 24;
  config.num_profiles = 3;
  // Sharpen the latent profiles: the bench needs a composite landscape
  // with one clear winner so cold-vs-delta selection is comparable
  // run-to-run, not a coin flip between near-tied Ks.
  config.profile_boost = 20.0;
  config.patient_heterogeneity = 0.05;
  config.seed = 20160516;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) return 1;
  const std::vector<dataset::RawExamRecord> rows = ToRaw(cohort->log);

  // Phase 1: ingest the whole stream batch by batch (in-memory store;
  // the timing covers validation, the log append and the incremental
  // descriptor maintenance — the whole non-analysis ingest path).
  // Front-loaded stream: half the history arrives up front, then the
  // steady-state trickle — each later batch stays well under the warm
  // drift gate, which is the regime the delta path exists for.
  service::CohortStore store{service::CohortStoreOptions{}};
  std::vector<size_t> batch_ends;
  batch_ends.push_back(rows.size() / 2);
  for (int batch = 1; batch < num_batches; ++batch) {
    batch_ends.push_back(rows.size() / 2 +
                         (rows.size() - rows.size() / 2) * batch /
                             (num_batches - 1));
  }
  common::WallTimer ingest_timer;
  size_t start = 0;
  for (size_t end : batch_ends) {
    std::vector<dataset::RawExamRecord> batch(rows.begin() + start,
                                              rows.begin() + end);
    auto result = store.Ingest("stream", batch);
    if (!result.ok()) {
      std::printf("ingest failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    start = end;
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  const double ingest_rate =
      static_cast<double>(rows.size()) / ingest_seconds;
  std::printf("[ingest] %zu records in %d batches: %.3f s (%.0f rec/s)\n\n",
              rows.size(), num_batches, ingest_seconds, ingest_rate);

  // Phase 2: replay the stream as generations of analysis. Each
  // generation builds the store's delta job (warm after the first
  // committed analysis) and races it against a cold run on the same
  // snapshot with the warm hint stripped.
  service::CohortStore analysis_store{service::CohortStoreOptions{}};
  common::Json::Array bench_rows;
  double steady_delta_seconds = 0.0;
  double steady_cold_seconds = 0.0;
  int64_t steady_records = 0;
  bool all_gates_hold = true;
  std::printf("%-4s %-8s %-6s %-9s %-9s %-8s %-6s %-6s %s\n", "gen",
              "records", "warm", "delta_s", "cold_s", "speedup", "k(d)",
              "k(c)", "gate");
  start = 0;
  for (size_t batch = 0; batch < batch_ends.size(); ++batch) {
    const size_t end = batch_ends[batch];
    std::vector<dataset::RawExamRecord> batch_rows(rows.begin() + start,
                                                   rows.begin() + end);
    auto ingested = analysis_store.Ingest("stream", batch_rows);
    ADA_CHECK(ingested.ok());
    start = end;

    auto job = analysis_store.BuildCohortJob("stream");
    ADA_CHECK(job.ok());
    core::SessionOptions warm_options = BenchOptions();
    warm_options.warm = job->options.warm;
    const bool warm_attached = warm_options.warm.centroids.rows() > 0;

    kdb::Database delta_db;
    core::AnalysisSession delta_session(&delta_db);
    common::WallTimer delta_timer;
    auto delta = delta_session.Run(job->log, nullptr, warm_options);
    const double delta_seconds = delta_timer.ElapsedSeconds();
    ADA_CHECK(delta.ok());

    core::SessionOptions cold_options = BenchOptions();
    kdb::Database cold_db;
    core::AnalysisSession cold_session(&cold_db);
    common::WallTimer cold_timer;
    auto cold = cold_session.Run(job->log, nullptr, cold_options);
    const double cold_seconds = cold_timer.ElapsedSeconds();
    ADA_CHECK(cold.ok());

    analysis_store.OnAnalysisCommitted(
        "stream", ingested->generation,
        static_cast<int64_t>(job->log.num_records()), delta.value());

    const std::string delta_report =
        core::RenderSessionReport(delta.value(), "stream");
    const std::string cold_report =
        core::RenderSessionReport(cold.value(), "stream");
    const bool identical = delta_report == cold_report;
    const double delta_composite =
        delta->optimizer.best().composite;
    const double cold_composite = cold->optimizer.best().composite;
    // Gate 1: byte-identity. Gate 2 (when the hint redirected a
    // k-means trajectory): the delta run must select an equivalent
    // configuration — the same K, or (when near-tied composites make
    // the cold selection flip) one whose composite is at least the
    // cold selection's. A delta run selecting a strictly worse
    // configuration than cold is a bug, and the bench fails on it.
    const bool gate_holds =
        identical || delta->optimizer.best_k() == cold->optimizer.best_k() ||
        delta_composite >= cold_composite - 1e-9;
    all_gates_hold = all_gates_hold && gate_holds;
    if (ingested->generation > 1) {
      steady_delta_seconds += delta_seconds;
      steady_cold_seconds += cold_seconds;
      steady_records += ingested->total_records;
    }

    std::printf("%-4lld %-8lld %-6s %-9.3f %-9.3f %-8.2f %-6d %-6d %s\n",
                static_cast<long long>(ingested->generation),
                static_cast<long long>(ingested->total_records),
                warm_attached ? "yes" : "no", delta_seconds, cold_seconds,
                cold_seconds / delta_seconds, delta->optimizer.best_k(),
                cold->optimizer.best_k(),
                identical       ? "identical"
                : gate_holds    ? "equivalent"
                                : "VIOLATED");

    common::Json::Object row;
    row["generation"] = ingested->generation;
    row["records"] = ingested->total_records;
    row["warm_attached"] = warm_attached;
    row["delta_seconds"] = delta_seconds;
    row["cold_seconds"] = cold_seconds;
    row["delta_selected_k"] =
        static_cast<int64_t>(delta->optimizer.best_k());
    row["cold_selected_k"] = static_cast<int64_t>(cold->optimizer.best_k());
    row["delta_composite"] = delta_composite;
    row["cold_composite"] = cold_composite;
    row["reports_identical"] = identical;
    row["gate_holds"] = gate_holds;
    bench_rows.push_back(common::Json(std::move(row)));
  }

  const double steady_speedup = steady_delta_seconds > 0.0
                                    ? steady_cold_seconds / steady_delta_seconds
                                    : 0.0;
  std::printf("\n[steady-state] generations 2..%d: delta %.3f s vs cold "
              "%.3f s (%.2fx), identity/equivalence gate %s\n",
              num_batches, steady_delta_seconds, steady_cold_seconds,
              steady_speedup, all_gates_hold ? "held" : "VIOLATED");

  common::Json::Object doc;
  doc["bench"] = "streaming_ingest";
  {
    common::Json::Object machine;
    machine["hardware_threads"] =
        static_cast<int64_t>(common::ThreadPool::Shared().num_threads());
    doc["machine"] = common::Json(std::move(machine));
  }
  {
    common::Json::Object cfg;
    cfg["patients"] = static_cast<int64_t>(config.num_patients);
    cfg["exam_types"] = static_cast<int64_t>(config.num_exam_types);
    cfg["records"] = static_cast<int64_t>(rows.size());
    cfg["batches"] = static_cast<int64_t>(num_batches);
    cfg["smoke"] = SmokeMode();
    doc["config"] = common::Json(std::move(cfg));
  }
  {
    common::Json::Object ingest;
    ingest["seconds"] = ingest_seconds;
    ingest["records_per_second"] = ingest_rate;
    doc["ingest"] = common::Json(std::move(ingest));
  }
  {
    common::Json::Object steady;
    steady["delta_seconds"] = steady_delta_seconds;
    steady["cold_seconds"] = steady_cold_seconds;
    steady["speedup"] = steady_speedup;
    steady["all_gates_hold"] = all_gates_hold;
    doc["steady_state"] = common::Json(std::move(steady));
  }
  doc["results"] = common::Json(std::move(bench_rows));
  const std::string bench_path = "BENCH_ingest.json";
  std::ofstream out(bench_path);
  out << common::Json(std::move(doc)).Pretty() << "\n";
  if (!out) {
    std::printf("failed to write %s\n", bench_path.c_str());
    return 1;
  }
  std::printf("[ingest] results written to %s\n", bench_path.c_str());
  std::printf("[ingest] total time: %.1f s\n\n", total_timer.ElapsedSeconds());
  // The gate is the bench's acceptance bar: a delta run that reports
  // something a cold run would not is a bug, not a speedup.
  return all_gates_hold ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
