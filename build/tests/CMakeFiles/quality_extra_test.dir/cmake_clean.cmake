file(REMOVE_RECURSE
  "CMakeFiles/quality_extra_test.dir/quality_extra_test.cc.o"
  "CMakeFiles/quality_extra_test.dir/quality_extra_test.cc.o.d"
  "quality_extra_test"
  "quality_extra_test.pdb"
  "quality_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
