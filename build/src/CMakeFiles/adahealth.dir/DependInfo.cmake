
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bisecting.cc" "src/CMakeFiles/adahealth.dir/cluster/bisecting.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/bisecting.cc.o.d"
  "/root/repo/src/cluster/elbow.cc" "src/CMakeFiles/adahealth.dir/cluster/elbow.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/elbow.cc.o.d"
  "/root/repo/src/cluster/filtering_kmeans.cc" "src/CMakeFiles/adahealth.dir/cluster/filtering_kmeans.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/filtering_kmeans.cc.o.d"
  "/root/repo/src/cluster/kdtree.cc" "src/CMakeFiles/adahealth.dir/cluster/kdtree.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/kdtree.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/adahealth.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/outliers.cc" "src/CMakeFiles/adahealth.dir/cluster/outliers.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/outliers.cc.o.d"
  "/root/repo/src/cluster/profiles.cc" "src/CMakeFiles/adahealth.dir/cluster/profiles.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/profiles.cc.o.d"
  "/root/repo/src/cluster/quality.cc" "src/CMakeFiles/adahealth.dir/cluster/quality.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/cluster/quality.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/adahealth.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/csv.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/adahealth.dir/common/json.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/adahealth.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/adahealth.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/adahealth.dir/common/status.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/adahealth.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/adahealth.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/CMakeFiles/adahealth.dir/core/characterization.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/characterization.cc.o.d"
  "/root/repo/src/core/endgoal.cc" "src/CMakeFiles/adahealth.dir/core/endgoal.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/endgoal.cc.o.d"
  "/root/repo/src/core/feedback_sim.cc" "src/CMakeFiles/adahealth.dir/core/feedback_sim.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/feedback_sim.cc.o.d"
  "/root/repo/src/core/knowledge.cc" "src/CMakeFiles/adahealth.dir/core/knowledge.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/knowledge.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/adahealth.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/partial_mining.cc" "src/CMakeFiles/adahealth.dir/core/partial_mining.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/partial_mining.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/CMakeFiles/adahealth.dir/core/ranking.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/ranking.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/adahealth.dir/core/report.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/report.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/adahealth.dir/core/session.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/session.cc.o.d"
  "/root/repo/src/core/transform_selector.cc" "src/CMakeFiles/adahealth.dir/core/transform_selector.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/core/transform_selector.cc.o.d"
  "/root/repo/src/dataset/exam_dictionary.cc" "src/CMakeFiles/adahealth.dir/dataset/exam_dictionary.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/dataset/exam_dictionary.cc.o.d"
  "/root/repo/src/dataset/exam_log.cc" "src/CMakeFiles/adahealth.dir/dataset/exam_log.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/dataset/exam_log.cc.o.d"
  "/root/repo/src/dataset/synthetic_cohort.cc" "src/CMakeFiles/adahealth.dir/dataset/synthetic_cohort.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/dataset/synthetic_cohort.cc.o.d"
  "/root/repo/src/dataset/taxonomy.cc" "src/CMakeFiles/adahealth.dir/dataset/taxonomy.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/dataset/taxonomy.cc.o.d"
  "/root/repo/src/kdb/aggregate.cc" "src/CMakeFiles/adahealth.dir/kdb/aggregate.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/aggregate.cc.o.d"
  "/root/repo/src/kdb/collection.cc" "src/CMakeFiles/adahealth.dir/kdb/collection.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/collection.cc.o.d"
  "/root/repo/src/kdb/database.cc" "src/CMakeFiles/adahealth.dir/kdb/database.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/database.cc.o.d"
  "/root/repo/src/kdb/document.cc" "src/CMakeFiles/adahealth.dir/kdb/document.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/document.cc.o.d"
  "/root/repo/src/kdb/query.cc" "src/CMakeFiles/adahealth.dir/kdb/query.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/query.cc.o.d"
  "/root/repo/src/kdb/storage.cc" "src/CMakeFiles/adahealth.dir/kdb/storage.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/kdb/storage.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/CMakeFiles/adahealth.dir/ml/cross_validation.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/cross_validation.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/adahealth.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/adahealth.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/adahealth.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/adahealth.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/adahealth.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/patterns/apriori.cc" "src/CMakeFiles/adahealth.dir/patterns/apriori.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/apriori.cc.o.d"
  "/root/repo/src/patterns/eclat.cc" "src/CMakeFiles/adahealth.dir/patterns/eclat.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/eclat.cc.o.d"
  "/root/repo/src/patterns/fpgrowth.cc" "src/CMakeFiles/adahealth.dir/patterns/fpgrowth.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/fpgrowth.cc.o.d"
  "/root/repo/src/patterns/generalized.cc" "src/CMakeFiles/adahealth.dir/patterns/generalized.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/generalized.cc.o.d"
  "/root/repo/src/patterns/rules.cc" "src/CMakeFiles/adahealth.dir/patterns/rules.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/rules.cc.o.d"
  "/root/repo/src/patterns/transactions.cc" "src/CMakeFiles/adahealth.dir/patterns/transactions.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/patterns/transactions.cc.o.d"
  "/root/repo/src/stats/correlations.cc" "src/CMakeFiles/adahealth.dir/stats/correlations.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/stats/correlations.cc.o.d"
  "/root/repo/src/stats/descriptors.cc" "src/CMakeFiles/adahealth.dir/stats/descriptors.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/stats/descriptors.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/adahealth.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/meta_features.cc" "src/CMakeFiles/adahealth.dir/stats/meta_features.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/stats/meta_features.cc.o.d"
  "/root/repo/src/transform/feature_select.cc" "src/CMakeFiles/adahealth.dir/transform/feature_select.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/transform/feature_select.cc.o.d"
  "/root/repo/src/transform/matrix.cc" "src/CMakeFiles/adahealth.dir/transform/matrix.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/transform/matrix.cc.o.d"
  "/root/repo/src/transform/sampling.cc" "src/CMakeFiles/adahealth.dir/transform/sampling.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/transform/sampling.cc.o.d"
  "/root/repo/src/transform/sparse_matrix.cc" "src/CMakeFiles/adahealth.dir/transform/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/transform/sparse_matrix.cc.o.d"
  "/root/repo/src/transform/vsm.cc" "src/CMakeFiles/adahealth.dir/transform/vsm.cc.o" "gcc" "src/CMakeFiles/adahealth.dir/transform/vsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
