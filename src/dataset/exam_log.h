// The examination-log dataset: the central data container of the
// reproduction (paper §IV: 6,380 patients, 95,788 records, 159 exam
// types over one year).
#ifndef ADAHEALTH_DATASET_EXAM_LOG_H_
#define ADAHEALTH_DATASET_EXAM_LOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/exam_dictionary.h"
#include "dataset/exam_record.h"

namespace adahealth {
namespace dataset {

/// One not-yet-interned record as it arrives from an ingestion source:
/// the exam type is still a name, not a dictionary id.
struct RawExamRecord {
  PatientId patient = 0;
  std::string exam_type;
  int32_t day = 0;
};

/// In-memory examination log: patients, exam-type dictionary, and the
/// flat record table. Invariants (enforced by the builders/loaders):
/// every record references an existing patient and exam type, and
/// patient ids are dense 0..num_patients-1.
class ExamLog {
 public:
  ExamLog() = default;
  ExamLog(std::vector<Patient> patients, ExamDictionary dictionary,
          std::vector<ExamRecord> records);

  /// Parses a records CSV with header "patient_id,exam_type,day".
  /// Patients are materialized from the distinct ids seen (ages and
  /// profiles unknown). Fails on malformed rows or non-dense patient ids.
  [[nodiscard]] static common::StatusOr<ExamLog> FromCsv(const std::string& csv_text);

  /// Loads FromCsv from a file on disk.
  [[nodiscard]] static common::StatusOr<ExamLog> Load(const std::string& path);

  /// Appends raw records in arrival order, interning new exam-type
  /// names and materializing new patients (ages/profiles unknown)
  /// exactly as FromCsv would have: appending batches B1..Bn to an
  /// empty log yields the same log as one FromCsv over their
  /// concatenation — the streaming-ingestion invariant the cohort
  /// store's delta-vs-cold identity rests on. Validates before
  /// mutating: a rejected batch (negative patient id, empty exam
  /// name) leaves the log untouched.
  [[nodiscard]] common::Status Append(const std::vector<RawExamRecord>& rows);

  /// Serializes the record table to CSV (inverse of FromCsv).
  std::string ToCsv() const;

  /// Writes ToCsv() to a file.
  [[nodiscard]] common::Status Save(const std::string& path) const;

  size_t num_patients() const { return patients_.size(); }
  size_t num_exam_types() const { return dictionary_.size(); }
  size_t num_records() const { return records_.size(); }

  const std::vector<Patient>& patients() const { return patients_; }
  const ExamDictionary& dictionary() const { return dictionary_; }
  const std::vector<ExamRecord>& records() const { return records_; }

  /// Number of records per exam type, indexed by ExamTypeId.
  std::vector<int64_t> ExamFrequencies() const;

  /// Number of records per patient, indexed by PatientId.
  std::vector<int64_t> RecordsPerPatient() const;

  /// Number of *distinct* patients that underwent each exam type.
  std::vector<int64_t> PatientsPerExam() const;

  /// Ground-truth profile labels (kUnknownProfile where absent).
  std::vector<int32_t> ProfileLabels() const;

  /// Returns a copy restricted to records whose exam type is in `keep`
  /// (a boolean mask indexed by ExamTypeId). Patients are preserved
  /// (including those left with zero records) so that horizontal
  /// cardinality is unchanged — this is the paper's vertical reduction
  /// that "reduc[es] the cardinality of the feature space while
  /// retaining the total number of patients".
  ExamLog FilterExamTypes(const std::vector<bool>& keep) const;

  /// Returns a copy restricted to the given patients (dense re-ids).
  /// This is the paper's horizontal reduction.
  ExamLog FilterPatients(const std::vector<PatientId>& patient_ids) const;

 private:
  std::vector<Patient> patients_;
  ExamDictionary dictionary_;
  std::vector<ExamRecord> records_;
};

}  // namespace dataset
}  // namespace adahealth

#endif  // ADAHEALTH_DATASET_EXAM_LOG_H_
