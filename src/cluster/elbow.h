// SSE-elbow analysis over a K sweep.
//
// The paper observes that "based on the SSE index, good values for K
// are in the range from 8 to 20" — i.e. SSE alone only yields an
// admissible *range*, which is exactly why ADA-HEALTH adds the
// classifier-based robustness assessment. This module computes that
// admissible range (and the classic knee point) from a (K, SSE)
// series so the two criteria can be compared programmatically.
#ifndef ADAHEALTH_CLUSTER_ELBOW_H_
#define ADAHEALTH_CLUSTER_ELBOW_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace cluster {

/// One point of a K sweep.
struct SsePoint {
  int32_t k = 0;
  double sse = 0.0;
};

struct ElbowAnalysis {
  /// The knee: the K with maximum distance from the line through the
  /// first and last sweep points (the "kneedle" construction).
  int32_t knee_k = 0;
  /// Smallest K from which the marginal SSE improvement per added
  /// cluster stays below `flat_threshold` times the average first-step
  /// improvement — the paper's "good values from here on" range start.
  int32_t admissible_from_k = 0;
  /// Normalized distances-to-chord per sweep point (parallel input).
  std::vector<double> knee_scores;
};

/// Analyzes a K sweep. Requires >= 3 points with strictly increasing K
/// and non-negative SSE. `flat_threshold` in (0, 1].
[[nodiscard]] common::StatusOr<ElbowAnalysis> AnalyzeElbow(
    const std::vector<SsePoint>& sweep, double flat_threshold = 0.25);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_ELBOW_H_
