#include "kdb/storage.h"

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

Collection MakeCollection() {
  Collection collection("test_items");
  for (int64_t i = 0; i < 5; ++i) {
    Document document;
    document.Set("value", Json(i));
    document.Set("name", Json("item-" + std::to_string(i)));
    collection.Insert(std::move(document));
  }
  return collection;
}

TEST(StorageTest, SerializeOneLinePerDocument) {
  std::string text = SerializeCollection(MakeCollection());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(StorageTest, SerializeDeserializeRoundTrip) {
  Collection original = MakeCollection();
  auto restored =
      DeserializeCollection("test_items", SerializeCollection(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ(restored->last_id(), original.last_id());
  for (const Document& document : original.documents()) {
    auto found = restored->FindById(document.id());
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), document);
  }
}

TEST(StorageTest, InsertAfterReloadContinuesIds) {
  Collection original = MakeCollection();
  auto restored =
      DeserializeCollection("test_items", SerializeCollection(original));
  ASSERT_TRUE(restored.ok());
  Document fresh;
  fresh.Set("value", Json(int64_t{99}));
  EXPECT_EQ(restored->Insert(std::move(fresh)), original.last_id() + 1);
}

TEST(StorageTest, BlankLinesTolerated) {
  auto restored = DeserializeCollection(
      "x", "\n{\"_id\":1,\"a\":1}\n\n{\"_id\":2,\"a\":2}\n\n");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
}

TEST(StorageTest, MalformedLineIsDataLoss) {
  auto restored = DeserializeCollection(
      "x", "{\"_id\":1}\n{\"_id\":2,  TRUNCATED");
  EXPECT_EQ(restored.status().code(), common::StatusCode::kDataLoss);
}

TEST(StorageTest, MissingIdRejected) {
  auto restored = DeserializeCollection("x", "{\"a\":1}\n");
  EXPECT_FALSE(restored.ok());
}

TEST(StorageTest, FileRoundTrip) {
  Collection original = MakeCollection();
  std::string directory = testing::TempDir();
  ASSERT_TRUE(SaveCollection(original, directory).ok());
  auto loaded = LoadCollection("test_items", directory);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove((directory + "/test_items.jsonl").c_str());
}

TEST(StorageTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadCollection("does_not_exist", testing::TempDir());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

TEST(StorageTest, ErrorsCarryLineNumberAndPayloadPreview) {
  auto restored = DeserializeCollection(
      "x", "{\"_id\":1,\"a\":1}\n{\"_id\":2,  TRUNCATED-PAYLOAD");
  ASSERT_FALSE(restored.ok());
  const std::string& message = restored.status().message();
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("TRUNCATED-PAYLOAD"), std::string::npos) << message;
  EXPECT_NE(message.find("'x'"), std::string::npos) << message;
}

TEST(StorageTest, PayloadPreviewIsTruncated) {
  std::string long_line = "{\"_id\":1,\"a\":\"" + std::string(200, 'z');
  auto restored = DeserializeCollection("x", long_line);
  ASSERT_FALSE(restored.ok());
  // The preview must not echo the entire 200+ character payload.
  EXPECT_LT(restored.status().message().size(), 160u);
  EXPECT_NE(restored.status().message().find("..."), std::string::npos);
}

TEST(StorageTest, SalvageRecoversPrefixBeforeTornFinalLine) {
  SalvagedCollection salvaged = DeserializeCollectionSalvage(
      "x", "{\"_id\":1,\"a\":1}\n{\"_id\":2,\"a\":2}\n{\"_id\":3,  TORN");
  EXPECT_EQ(salvaged.collection.size(), 2u);
  EXPECT_EQ(salvaged.recovered_lines, 2u);
  EXPECT_EQ(salvaged.dropped_lines, 1u);
  EXPECT_EQ(salvaged.detail.code(), common::StatusCode::kDataLoss);
  // IDs survive, so inserts after recovery do not collide.
  EXPECT_TRUE(salvaged.collection.FindById(2).ok());
}

TEST(StorageTest, SalvageOfEmptyFileIsEmptyCollection) {
  SalvagedCollection salvaged = DeserializeCollectionSalvage("x", "");
  EXPECT_EQ(salvaged.collection.size(), 0u);
  EXPECT_EQ(salvaged.recovered_lines, 0u);
  EXPECT_EQ(salvaged.dropped_lines, 0u);
  EXPECT_TRUE(salvaged.detail.ok());
}

TEST(StorageTest, SalvageStopsAtDuplicateId) {
  // A duplicated "_id" (e.g. a replayed append) poisons the tail: the
  // prefix before the duplicate is kept, the rest is dropped.
  SalvagedCollection salvaged = DeserializeCollectionSalvage(
      "x",
      "{\"_id\":1,\"a\":1}\n{\"_id\":1,\"a\":9}\n{\"_id\":2,\"a\":2}\n");
  EXPECT_EQ(salvaged.collection.size(), 1u);
  EXPECT_EQ(salvaged.recovered_lines, 1u);
  EXPECT_EQ(salvaged.dropped_lines, 2u);
  EXPECT_FALSE(salvaged.detail.ok());
}

TEST(StorageTest, LoadCollectionSalvageRecoversTornFile) {
  std::string directory = testing::TempDir();
  std::string path = directory + "/torn.jsonl";
  FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"_id\":1,\"a\":1}\n{\"_id\":2,\"a\":2}\n{\"_id\":3,\"a", file);
  std::fclose(file);
  auto strict = LoadCollection("torn", directory);
  EXPECT_EQ(strict.status().code(), common::StatusCode::kDataLoss);
  auto salvaged = LoadCollectionSalvage("torn", directory);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_EQ(salvaged->collection.size(), 2u);
  EXPECT_EQ(salvaged->dropped_lines, 1u);
  std::remove(path.c_str());
}

TEST(StorageTest, SuccessfulSaveLeavesNoTmpResidue) {
  Collection original = MakeCollection();
  std::string directory = testing::TempDir();
  ASSERT_TRUE(SaveCollection(original, directory).ok());
  FILE* tmp = std::fopen((directory + "/test_items.jsonl.tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove((directory + "/test_items.jsonl").c_str());
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
