// Small string helpers shared across modules.
#ifndef ADAHEALTH_COMMON_STRING_UTIL_H_
#define ADAHEALTH_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace common {

/// Splits `text` at every occurrence of `delimiter`. Empty fields are
/// preserved ("a,,b" -> {"a", "", "b"}); splitting "" yields {""}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `delimiter`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

/// Parses a base-10 signed integer; the whole string must be consumed.
[[nodiscard]] StatusOr<int64_t> ParseInt64(std::string_view text);

/// Parses a floating point value; the whole string must be consumed.
[[nodiscard]] StatusOr<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_STRING_UTIL_H_
