# Empty dependencies file for feedback_sim_test.
# This may be replaced when dependencies are built.
