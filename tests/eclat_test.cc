#include "patterns/eclat.h"

#include <gtest/gtest.h>
#include "common/rng.h"
#include "patterns/fpgrowth.h"

namespace adahealth {
namespace patterns {
namespace {

TransactionDb TextbookDb() {
  TransactionDb db;
  db.num_items = 5;
  db.transactions = {
      {0, 1, 4}, {0, 3}, {0, 2},    {0, 1, 3}, {1, 2},
      {0, 2},    {1, 2}, {0, 1, 2, 4}, {0, 1, 2},
  };
  return db;
}

TransactionDb RandomDb(size_t num_transactions, size_t num_items,
                       double item_probability, uint64_t seed) {
  common::Rng rng(seed);
  TransactionDb db;
  db.num_items = num_items;
  for (size_t t = 0; t < num_transactions; ++t) {
    std::vector<ItemId> transaction;
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(item_probability)) {
        transaction.push_back(static_cast<ItemId>(i));
      }
    }
    db.transactions.push_back(std::move(transaction));
  }
  return db;
}

TEST(EclatTest, MatchesAprioriOnTextbookDb) {
  for (int64_t min_support : {1, 2, 3, 4, 5}) {
    MiningOptions options;
    options.min_support_count = min_support;
    auto apriori = MineApriori(TextbookDb(), options);
    auto eclat = MineEclat(TextbookDb(), options);
    ASSERT_TRUE(apriori.ok());
    ASSERT_TRUE(eclat.ok());
    EXPECT_EQ(apriori.value(), eclat.value())
        << "min_support " << min_support;
  }
}

struct EclatParityCase {
  size_t num_transactions;
  size_t num_items;
  double density;
  int64_t min_support;
};

class EclatParityTest : public testing::TestWithParam<EclatParityCase> {};

TEST_P(EclatParityTest, AllThreeMinersAgree) {
  const EclatParityCase& param = GetParam();
  TransactionDb db = RandomDb(param.num_transactions, param.num_items,
                              param.density,
                              param.num_items * 37 + param.num_transactions);
  MiningOptions options;
  options.min_support_count = param.min_support;
  auto apriori = MineApriori(db, options);
  auto fpgrowth = MineFpGrowth(db, options);
  auto eclat = MineEclat(db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fpgrowth.ok());
  ASSERT_TRUE(eclat.ok());
  EXPECT_EQ(apriori.value(), eclat.value());
  EXPECT_EQ(fpgrowth.value(), eclat.value());
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, EclatParityTest,
    testing::Values(EclatParityCase{60, 8, 0.3, 4},
                    EclatParityCase{100, 10, 0.25, 6},
                    EclatParityCase{40, 12, 0.2, 2},
                    EclatParityCase{150, 6, 0.5, 20},
                    EclatParityCase{70, 66, 0.05, 2},  // > 64 tids word.
                    EclatParityCase{129, 9, 0.35, 10}));

TEST(EclatTest, MaxItemsetSizeCaps) {
  MiningOptions options;
  options.min_support_count = 1;
  options.max_itemset_size = 2;
  auto eclat = MineEclat(TextbookDb(), options);
  auto apriori = MineApriori(TextbookDb(), options);
  ASSERT_TRUE(eclat.ok());
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(eclat.value(), apriori.value());
}

TEST(EclatTest, EmptyDatabase) {
  TransactionDb db;
  db.num_items = 3;
  MiningOptions options;
  options.min_support_count = 1;
  auto eclat = MineEclat(db, options);
  ASSERT_TRUE(eclat.ok());
  EXPECT_TRUE(eclat->empty());
}

TEST(EclatTest, RejectsInvalidSupport) {
  MiningOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(MineEclat(TextbookDb(), options).ok());
}

TEST(EclatTest, BitsetBoundaryAt64Transactions) {
  // Exactly 64 and 65 transactions exercise the word boundary.
  for (size_t n : {64u, 65u}) {
    TransactionDb db;
    db.num_items = 2;
    for (size_t t = 0; t < n; ++t) {
      db.transactions.push_back({0});
      db.transactions.back().push_back(1);
    }
    MiningOptions options;
    options.min_support_count = static_cast<int64_t>(n);
    auto eclat = MineEclat(db, options);
    ASSERT_TRUE(eclat.ok());
    // {0}, {1}, {0,1} all have support n.
    EXPECT_EQ(eclat->size(), 3u);
    for (const auto& itemset : eclat.value()) {
      EXPECT_EQ(itemset.support, static_cast<int64_t>(n));
    }
  }
}

}  // namespace
}  // namespace patterns
}  // namespace adahealth
