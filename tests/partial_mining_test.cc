#include "core/partial_mining.h"

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace core {
namespace {

dataset::ExamLog MakeCohortLog() {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  EXPECT_TRUE(cohort.ok());
  return cohort->log;
}

PartialMiningOptions FastOptions() {
  PartialMiningOptions options;
  options.fractions = {0.2, 0.4, 1.0};
  options.ks = {3, 4};
  options.kmeans.max_iterations = 30;
  options.kmeans.seed = 5;
  return options;
}

TEST(ExamSubsetPartialMiningTest, StepsTrackTheSchedule) {
  dataset::ExamLog log = MakeCohortLog();
  auto result = RunExamSubsetPartialMining(log, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 3u);
  EXPECT_DOUBLE_EQ(result->steps[0].fraction, 0.2);
  EXPECT_DOUBLE_EQ(result->steps[2].fraction, 1.0);
  // Record coverage grows with the exam fraction.
  EXPECT_LT(result->steps[0].record_coverage,
            result->steps[1].record_coverage);
  EXPECT_DOUBLE_EQ(result->steps[2].record_coverage, 1.0);
  // Per-step similarities exist for every K.
  for (const auto& step : result->steps) {
    EXPECT_EQ(step.overall_similarity.size(), 2u);
    for (double s : step.overall_similarity) EXPECT_GT(s, 0.0);
  }
}

TEST(ExamSubsetPartialMiningTest, FullStepHasZeroDiff) {
  dataset::ExamLog log = MakeCohortLog();
  auto result = RunExamSubsetPartialMining(log, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->steps.back().mean_relative_diff, 0.0);
}

TEST(ExamSubsetPartialMiningTest, SelectsSmallestStepWithinTolerance) {
  dataset::ExamLog log = MakeCohortLog();
  PartialMiningOptions options = FastOptions();
  options.tolerance = 1.0;  // Everything qualifies -> first step.
  auto generous = RunExamSubsetPartialMining(log, options);
  ASSERT_TRUE(generous.ok());
  EXPECT_EQ(generous->selected_step, 0u);

  options.tolerance = 0.0;  // Only the exact full data qualifies.
  auto strict = RunExamSubsetPartialMining(log, options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->selected_step, strict->steps.size() - 1);
}

TEST(ExamSubsetPartialMiningTest, AppendsFullBaselineWhenMissing) {
  dataset::ExamLog log = MakeCohortLog();
  PartialMiningOptions options = FastOptions();
  options.fractions = {0.3, 0.6};  // No 1.0 step given.
  auto result = RunExamSubsetPartialMining(log, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 3u);
  EXPECT_DOUBLE_EQ(result->steps.back().fraction, 1.0);
}

TEST(ExamSubsetPartialMiningTest, RejectsBadOptions) {
  dataset::ExamLog log = MakeCohortLog();
  PartialMiningOptions options = FastOptions();
  options.fractions = {};
  EXPECT_FALSE(RunExamSubsetPartialMining(log, options).ok());
  options = FastOptions();
  options.fractions = {0.4, 0.2};
  EXPECT_FALSE(RunExamSubsetPartialMining(log, options).ok());
  options = FastOptions();
  options.ks = {};
  EXPECT_FALSE(RunExamSubsetPartialMining(log, options).ok());
  options = FastOptions();
  options.ks = {0};
  EXPECT_FALSE(RunExamSubsetPartialMining(log, options).ok());
  options = FastOptions();
  options.tolerance = -0.1;
  EXPECT_FALSE(RunExamSubsetPartialMining(log, options).ok());
}

TEST(PatientSubsetPartialMiningTest, ConsecutiveStepComparison) {
  dataset::ExamLog log = MakeCohortLog();
  PartialMiningOptions options = FastOptions();
  options.fractions = {0.25, 0.5, 1.0};
  auto result = RunPatientSubsetPartialMining(log, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 3u);
  // First step has no predecessor: diff sentinel 1.0.
  EXPECT_DOUBLE_EQ(result->steps[0].mean_relative_diff, 1.0);
  EXPECT_GE(result->steps[1].mean_relative_diff, 0.0);
  // Record coverage grows with the sample.
  EXPECT_LT(result->steps[0].record_coverage,
            result->steps[2].record_coverage);
}

TEST(PatientSubsetPartialMiningTest, StabilizedQualitySelectsEarlyStep) {
  dataset::ExamLog log = MakeCohortLog();
  PartialMiningOptions options = FastOptions();
  options.fractions = {0.4, 0.7, 1.0};
  options.tolerance = 0.5;  // Loose: similarity stabilizes quickly.
  auto result = RunPatientSubsetPartialMining(log, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->selected_step, result->steps.size());
}

TEST(PartialMiningTest, DeterministicForSeed) {
  dataset::ExamLog log = MakeCohortLog();
  auto a = RunExamSubsetPartialMining(log, FastOptions());
  auto b = RunExamSubsetPartialMining(log, FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a->steps.size(); ++s) {
    EXPECT_EQ(a->steps[s].overall_similarity,
              b->steps[s].overall_similarity);
  }
  EXPECT_EQ(a->selected_step, b->selected_step);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
