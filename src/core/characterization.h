// The "data characterization" block of the ADA-HEALTH architecture:
// computes statistical descriptors of a dataset and renders/stores
// them (K-DB collection 3).
#ifndef ADAHEALTH_CORE_CHARACTERIZATION_H_
#define ADAHEALTH_CORE_CHARACTERIZATION_H_

#include <string>

#include "dataset/exam_log.h"
#include "kdb/database.h"
#include "stats/meta_features.h"

namespace adahealth {
namespace core {

/// Characterization output: the meta-features plus a formatted report.
struct CharacterizationReport {
  stats::MetaFeatures features;
  std::string text;
};

/// Computes and formats the characterization of `log`.
CharacterizationReport Characterize(const dataset::ExamLog& log);

/// Stores the characterization in the K-DB descriptors collection,
/// tagged with `dataset_id`. Returns the document id.
kdb::DocumentId StoreCharacterization(const CharacterizationReport& report,
                                      const std::string& dataset_id,
                                      kdb::Database& db);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_CHARACTERIZATION_H_
