#include "common/status.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedName) {
  EXPECT_EQ(ResourceExhaustedError("queue full").ToString(),
            "RESOURCE_EXHAUSTED: queue full");
}

TEST(StatusTest, StatusCodeFromNameRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kDataLoss,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
        StatusCode::kResourceExhausted}) {
    auto parsed = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_EQ(parsed.value(), code);
  }
}

TEST(StatusTest, StatusCodeFromNameRejectsUnknownNames) {
  EXPECT_EQ(StatusCodeFromName("NO_SUCH_CODE").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusCodeFromName("").status().code(),
            StatusCode::kInvalidArgument);
  // Matching is exact: canonical names are upper snake case.
  EXPECT_FALSE(StatusCodeFromName("not_found").ok());
}

TEST(StatusTest, TransientCodeNames) {
  EXPECT_EQ(UnavailableError("disk busy").ToString(),
            "UNAVAILABLE: disk busy");
  EXPECT_EQ(DeadlineExceededError("too slow").ToString(),
            "DEADLINE_EXCEEDED: too slow");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

StatusOr<int> DoubleIfPositive(int x) {
  ADA_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

StatusOr<int> QuadrupleViaAssign(int x) {
  ADA_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  ADA_ASSIGN_OR_RETURN(int quadrupled, DoubleIfPositive(doubled));
  return quadrupled;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  EXPECT_EQ(QuadrupleViaAssign(10).value(), 40);
  EXPECT_EQ(QuadrupleViaAssign(-5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result(InternalError("boom"));
  EXPECT_DEATH(result.value(), "StatusOr::value");
}

}  // namespace
}  // namespace common
}  // namespace adahealth
