# Empty dependencies file for exam_log_test.
# This may be replaced when dependencies are built.
