// JSON-lines persistence of collections: one document per line,
// append-friendly, reloadable after a crash.
//
// Crash safety. SaveCollection is atomic: the serialized collection is
// written to `<name>.jsonl.tmp`, flushed to disk (fsync), and renamed
// over the final path, so a crash at any point leaves either the old
// or the new file — never a torn mixture. LoadCollection is strict by
// default (a malformed line is DATA_LOSS); LoadCollectionSalvage
// recovers the valid JSONL prefix of a torn write instead, reporting
// how much was dropped.
//
// Failpoints (common/failpoint.h): "kdb.storage.write",
// "kdb.storage.fsync", "kdb.storage.rename" fire inside SaveCollection
// before the corresponding syscall; "kdb.storage.read" fires inside
// LoadCollection/LoadCollectionSalvage before the file is opened.
#ifndef ADAHEALTH_KDB_STORAGE_H_
#define ADAHEALTH_KDB_STORAGE_H_

#include <string>

#include "common/status.h"
#include "kdb/collection.h"

namespace adahealth {
namespace kdb {

/// Serializes every document of `collection` as one JSON line.
std::string SerializeCollection(const Collection& collection);

/// Rebuilds a collection named `name` from JSON-lines `text`.
/// Fails with DATA_LOSS on malformed lines and INVALID_ARGUMENT /
/// ALREADY_EXISTS on documents without a valid, unique "_id"; messages
/// carry the 1-based line number and a truncated payload preview so a
/// torn write can be triaged from the error alone.
[[nodiscard]] common::StatusOr<Collection> DeserializeCollection(const std::string& name,
                                                   const std::string& text);

/// Result of a salvage deserialization/load: the longest valid JSONL
/// prefix, plus an accounting of what was dropped.
struct SalvagedCollection {
  Collection collection;
  /// Documents restored (the valid prefix).
  size_t recovered_lines = 0;
  /// Non-empty lines discarded (the first bad line and everything
  /// after it).
  size_t dropped_lines = 0;
  /// OK when nothing was dropped; otherwise the DATA_LOSS (or
  /// duplicate-id) detail of the first bad line.
  common::Status detail;

  SalvagedCollection() : collection("") {}
  explicit SalvagedCollection(Collection c) : collection(std::move(c)) {}
};

/// Salvage variant of DeserializeCollection: restores documents up to
/// the first malformed or duplicate-id line and drops the rest (a torn
/// tail from a crashed non-atomic append). Never fails on content —
/// the damage is reported through `detail`/`dropped_lines` and counted
/// in the "storage_salvaged_lines" metric.
[[nodiscard]] SalvagedCollection DeserializeCollectionSalvage(
    const std::string& name, const std::string& text);

/// Atomically writes the collection to `<directory>/<name>.jsonl`
/// (tmp + fsync + rename). On any failure the previous file is left
/// untouched and the temporary file is removed.
[[nodiscard]] common::Status SaveCollection(const Collection& collection,
                              const std::string& directory);

/// Loads `<directory>/<name>.jsonl` (strict).
[[nodiscard]] common::StatusOr<Collection> LoadCollection(const std::string& name,
                                            const std::string& directory);

/// Loads `<directory>/<name>.jsonl`, salvaging the valid prefix of a
/// torn file. Fails only when the file cannot be read at all.
[[nodiscard]] common::StatusOr<SalvagedCollection> LoadCollectionSalvage(
    const std::string& name, const std::string& directory);

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_STORAGE_H_
