file(REMOVE_RECURSE
  "libadahealth.a"
)
