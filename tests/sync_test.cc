#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(MutexTest, ExcludesConcurrentCriticalSections) {
  Mutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.Lock();
  std::atomic<bool> acquired{true};
  // try_lock from the owning thread is UB on std::mutex; probe from
  // another thread.
  std::thread prober([&] { acquired.store(mutex.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mutex.Unlock();
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(MutexLockTest, ManualUnlockReleasesAndRelockReacquires) {
  Mutex mutex;
  {
    MutexLock lock(&mutex);
    lock.Unlock();
    // The mutex is genuinely free while dropped.
    std::atomic<bool> acquired{false};
    std::thread prober([&] {
      if (mutex.TryLock()) {
        acquired.store(true);
        mutex.Unlock();
      }
    });
    prober.join();
    EXPECT_TRUE(acquired.load());
    lock.Lock();
  }
  // Destructor released the re-acquired mutex.
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(MutexLockTest, DestructorAfterManualUnlockDoesNotDoubleRelease) {
  Mutex mutex;
  {
    MutexLock lock(&mutex);
    lock.Unlock();
  }  // Destructor must observe the released state (held_ == false).
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(CondVarTest, PredicateWaitObservesNotifiedState) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    MutexLock lock(&mutex);
    cv.Wait(mutex, [&]() ADA_REQUIRES(mutex) { return ready; });
    observed = 42;
  });
  {
    MutexLock lock(&mutex);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mutex);
      cv.Wait(mutex, [&]() ADA_REQUIRES(mutex) { return go; });
      woken.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mutex);
    go = true;
  }
  cv.NotifyAll();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(woken.load(), 3);
}

TEST(CondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(&mutex);
  const auto start = std::chrono::steady_clock::now();
  const bool satisfied =
      cv.WaitFor(mutex, 20.0, []() { return false; });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(satisfied);
  EXPECT_GE(elapsed, std::chrono::milliseconds(19));
}

TEST(CondVarTest, WaitForReturnsTrueWhenNotifiedInTime) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool satisfied = false;
  std::thread waiter([&] {
    MutexLock lock(&mutex);
    satisfied = cv.WaitFor(mutex, 10000.0,
                           [&]() ADA_REQUIRES(mutex) { return ready; });
  });
  {
    MutexLock lock(&mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(satisfied);
}

TEST(CondVarTest, WaitUntilReportsTimeoutDistinctly) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(&mutex);
  const bool notified = cv.WaitUntil(
      mutex, std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(10));
  EXPECT_FALSE(notified);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
