#include "transform/feature_select.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace transform {
namespace {

dataset::ExamLog MakeLog() {
  // Frequencies: a=4, b=2, c=1, d=0.
  std::vector<dataset::Patient> patients{{0, 50, -1}, {1, 60, -1}};
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  auto b = dictionary.Intern("b");
  auto c = dictionary.Intern("c");
  dictionary.Intern("d");
  std::vector<dataset::ExamRecord> records{
      {0, a, 1}, {0, a, 2}, {1, a, 3}, {1, a, 4},
      {0, b, 5}, {1, b, 6}, {0, c, 7}};
  return dataset::ExamLog(std::move(patients), std::move(dictionary),
                          std::move(records));
}

TEST(RankExamsTest, DescendingFrequencyStableTies) {
  dataset::ExamLog log = MakeLog();
  EXPECT_EQ(RankExamsByFrequency(log),
            (std::vector<dataset::ExamTypeId>{0, 1, 2, 3}));
}

TEST(TopExamsMaskTest, SelectsMostFrequent) {
  dataset::ExamLog log = MakeLog();
  std::vector<bool> mask = TopExamsMask(log, 2);
  EXPECT_EQ(mask, (std::vector<bool>{true, true, false, false}));
}

TEST(TopExamsMaskTest, ZeroAndAll) {
  dataset::ExamLog log = MakeLog();
  EXPECT_EQ(TopExamsMask(log, 0),
            (std::vector<bool>{false, false, false, false}));
  EXPECT_EQ(TopExamsMask(log, 4),
            (std::vector<bool>{true, true, true, true}));
}

TEST(TopFractionExamsMaskTest, RoundsToNearest) {
  dataset::ExamLog log = MakeLog();
  // 0.5 of 4 exams = 2.
  std::vector<bool> mask = TopFractionExamsMask(log, 0.5);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 2);
}

TEST(RecordCoverageTest, KnownValues) {
  dataset::ExamLog log = MakeLog();
  EXPECT_DOUBLE_EQ(RecordCoverage(log, TopExamsMask(log, 1)), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(RecordCoverage(log, TopExamsMask(log, 2)), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(RecordCoverage(log, TopExamsMask(log, 4)), 1.0);
}

TEST(BuildVerticalScheduleTest, CoverageIsMonotone) {
  dataset::ExamLog log = MakeLog();
  auto schedule = BuildVerticalSchedule(log, {0.25, 0.5, 1.0});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 3u);
  EXPECT_LE((*schedule)[0].record_coverage, (*schedule)[1].record_coverage);
  EXPECT_LE((*schedule)[1].record_coverage, (*schedule)[2].record_coverage);
  EXPECT_DOUBLE_EQ((*schedule)[2].record_coverage, 1.0);
}

TEST(BuildVerticalScheduleTest, RejectsBadFractions) {
  dataset::ExamLog log = MakeLog();
  EXPECT_FALSE(BuildVerticalSchedule(log, {}).ok());
  EXPECT_FALSE(BuildVerticalSchedule(log, {0.0}).ok());
  EXPECT_FALSE(BuildVerticalSchedule(log, {1.5}).ok());
}

TEST(BuildVerticalScheduleTest, PaperCoverageCurveOnSyntheticCohort) {
  // The paper's §IV-B curve: 20% / 40% / 100% of exam types cover
  // ~70% / ~85% / 100% of the records.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::PaperScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  auto schedule = BuildVerticalSchedule(cohort->log, {0.2, 0.4, 1.0});
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR((*schedule)[0].record_coverage, 0.70, 0.06);
  EXPECT_NEAR((*schedule)[1].record_coverage, 0.85, 0.05);
  EXPECT_DOUBLE_EQ((*schedule)[2].record_coverage, 1.0);
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
