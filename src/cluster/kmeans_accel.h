// Exact accelerated k-means engine: Hamerly-style bound-pruned Lloyd
// with fused distance kernels and chunked parallel passes on the
// shared thread pool.
//
// The engine is a drop-in behind the RunKMeans contract
// (KMeansOptions::engine == kAccelerated, the default): for identical
// options it produces assignments, centroids, SSE and iteration counts
// bit-identical to the naive engine. The bounds are exact, not
// approximate — every pruning decision is padded so floating-point
// rounding can only make it conservative, and every assignment that is
// actually recomputed uses the same arithmetic (same formula, same
// scan order, same tie-break) as the naive scan.
#ifndef ADAHEALTH_CLUSTER_KMEANS_ACCEL_H_
#define ADAHEALTH_CLUSTER_KMEANS_ACCEL_H_

#include "cluster/kmeans.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "transform/matrix.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace cluster {

/// Runs the accelerated engine directly (RunKMeans dispatches here when
/// options.engine == kAccelerated). Same contract and error conditions
/// as RunKMeans; `options.engine` itself is ignored.
///
/// The CSR overload runs the sparse kernels — an O(nnz) fused screen
/// against a transposed centroid block plus exact scalar rechecks —
/// and produces results bit-identical to the dense overload on
/// data.ToDense(). Runs with fewer than kMinClustersForBounds clusters
/// skip the Hamerly bookkeeping entirely (pure overhead at small k)
/// and full-scan with the fused kernel instead.
///
/// Instrumentation (process-wide registry):
///   kmeans/skipped_distance_checks  exact point-centroid distance
///                                   evaluations avoided by the bound
///                                   tests (k per fully skipped point,
///                                   k-1 per tighten-then-skip),
///   kmeans/bound_recomputes         upper-bound tightenings (one exact
///                                   distance each),
///   kmeans/parallel_chunks          chunks executed on the shared pool,
///   kmeans/smallk_unbounded_runs    runs that skipped the Hamerly
///                                   bookkeeping because k was small.
[[nodiscard]] common::StatusOr<Clustering> RunAcceleratedKMeans(
    const transform::Matrix& data, const KMeansOptions& options);
[[nodiscard]] common::StatusOr<Clustering> RunAcceleratedKMeans(
    const transform::CsrMatrix& data, const KMeansOptions& options);

namespace internal {

/// Same engine on an explicit pool instead of ThreadPool::Shared().
/// Lets tests exercise the parallel code path (and its bit-identity
/// with the serial one) on machines with few cores.
[[nodiscard]] common::StatusOr<Clustering> RunAcceleratedKMeansOnPool(
    const transform::Matrix& data, const KMeansOptions& options,
    common::ThreadPool& pool);
[[nodiscard]] common::StatusOr<Clustering> RunAcceleratedKMeansOnPool(
    const transform::CsrMatrix& data, const KMeansOptions& options,
    common::ThreadPool& pool);

}  // namespace internal

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_KMEANS_ACCEL_H_
