#include "dataset/exam_dictionary.h"

#include "common/check.h"

namespace adahealth {
namespace dataset {

ExamTypeId ExamDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  ExamTypeId id = static_cast<ExamTypeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

common::StatusOr<ExamTypeId> ExamDictionary::Lookup(
    std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return common::NotFoundError("unknown exam type: " + std::string(name));
  }
  return it->second;
}

const std::string& ExamDictionary::Name(ExamTypeId id) const {
  // invariant: ids come from Intern/Lookup on this dictionary; an
  // out-of-range id is a programmer error (Lookup returns Status for
  // unknown *names*, the user-facing direction).
  ADA_CHECK_GE(id, 0);
  ADA_CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace dataset
}  // namespace adahealth
