// AVX2-vs-scalar equivalence for the runtime-dispatched kernels, and
// the engine-level guarantee that k-means results do not depend on the
// dispatched ISA (the SIMD kernels feed only error-bounded screens;
// every exact decision is rechecked with scalar arithmetic).
#include "transform/simd_kernels.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "test_util.h"
#include "transform/matrix.h"

namespace adahealth {
namespace transform {
namespace {

using cluster::Clustering;
using cluster::KMeansOptions;
using simd::IsaLevel;

/// Restores the process-wide dispatch on scope exit so a failing test
/// cannot leak a pinned ISA into later tests.
struct ScopedIsa {
  explicit ScopedIsa(IsaLevel isa) { simd::internal::SetIsaForTesting(isa); }
  ~ScopedIsa() { simd::internal::ResetIsaForTesting(); }
};

TEST(SimdKernelsTest, IsaNameCoversAllLevels) {
  EXPECT_STREQ(simd::IsaName(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaName(IsaLevel::kAvx2Fma), "avx2+fma");
}

TEST(SimdKernelsTest, ScalarPinAlwaysTakes) {
  ScopedIsa pin(IsaLevel::kScalar);
  EXPECT_EQ(simd::ActiveIsa(), IsaLevel::kScalar);
}

TEST(SimdKernelsTest, Avx2PinOnlyNarrows) {
  // Requesting AVX2 on a machine (or build) without it must fall back
  // to scalar — the hook can never widen past what the CPU supports.
  ScopedIsa pin(IsaLevel::kAvx2Fma);
  if (simd::internal::Avx2Available()) {
    EXPECT_EQ(simd::ActiveIsa(), IsaLevel::kAvx2Fma);
  } else {
    EXPECT_EQ(simd::ActiveIsa(), IsaLevel::kScalar);
  }
}

TEST(SimdKernelsTest, DotProductMatchesExactWithinEnvelope) {
  common::Rng rng(89);
  // Sizes straddle every unroll boundary: sub-lane, one 4-lane block,
  // the 16-wide main loop, and ragged tails.
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 48u, 159u, 1000u}) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Normal(0.0, 3.0);
      b[i] = rng.Normal(0.0, 3.0);
    }
    const double exact = Dot(a, b);
    const double got = simd::DotProduct(a, b);
    double scale = 0.0;
    for (size_t i = 0; i < n; ++i) scale += std::abs(a[i] * b[i]);
    EXPECT_NEAR(got, exact, FusedRelativeError(n) * (scale + 1.0))
        << "n=" << n;
  }
}

TEST(SimdKernelsTest, ScalarAndAvx2AgreeWithinEnvelope) {
  if (!simd::internal::Avx2Available()) {
    GTEST_SKIP() << "AVX2+FMA not available in this build/CPU";
  }
  common::Rng rng(97);
  for (size_t n : {1u, 7u, 16u, 33u, 64u, 159u}) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    std::vector<double> y0(n);
    std::vector<double> y1(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Normal(0.0, 2.0);
      b[i] = rng.Normal(0.0, 2.0);
      y0[i] = rng.Normal(0.0, 1.0);
      y1[i] = y0[i];
    }
    double scalar_dot;
    double scalar_norm;
    {
      ScopedIsa pin(IsaLevel::kScalar);
      scalar_dot = simd::DotProduct(a, b);
      scalar_norm = simd::SquaredNorm(a);
      simd::Axpy(0.75, a, y0);
    }
    {
      ScopedIsa pin(IsaLevel::kAvx2Fma);
      const double rel = FusedRelativeError(n);
      double scale = 0.0;
      for (size_t i = 0; i < n; ++i) scale += std::abs(a[i] * b[i]);
      EXPECT_NEAR(simd::DotProduct(a, b), scalar_dot, rel * (scale + 1.0));
      EXPECT_NEAR(simd::SquaredNorm(a), scalar_norm,
                  rel * (scalar_norm + 1.0));
      simd::Axpy(0.75, a, y1);
      for (size_t i = 0; i < n; ++i) {
        // Per-lane: one FMA rounding vs multiply-then-add — at most a
        // few ulps apart.
        EXPECT_NEAR(y1[i], y0[i],
                    8.0 * std::numeric_limits<double>::epsilon() *
                        (std::abs(y0[i]) + std::abs(0.75 * a[i])))
            << "n=" << n << " lane " << i;
      }
    }
  }
}

TEST(SimdKernelsTest, RepeatedCallsAreDeterministic) {
  common::Rng rng(101);
  std::vector<double> a(159);
  std::vector<double> b(159);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal(0.0, 2.0);
    b[i] = rng.Normal(0.0, 2.0);
  }
  const double first = simd::DotProduct(a, b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(simd::DotProduct(a, b), first);
}

/// Engine-level ISA independence: identical Clusterings whichever
/// kernel set the screens run on.
TEST(SimdKernelsTest, KMeansResultsIndependentOfDispatchedIsa) {
  if (!simd::internal::Avx2Available()) {
    GTEST_SKIP() << "AVX2+FMA not available in this build/CPU";
  }
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0, 0.0, 0.0},
                                       {6.0, 0.0, 0.0, 0.0},
                                       {0.0, 6.0, 0.0, 0.0},
                                       {0.0, 0.0, 6.0, 0.0},
                                       {3.0, 3.0, 3.0, 3.0}},
                                      60, 1.5, 103);
  KMeansOptions options;
  options.k = 5;
  options.seed = 103;

  Clustering scalar_run;
  {
    ScopedIsa pin(IsaLevel::kScalar);
    auto run = cluster::RunKMeans(blobs.points, options);
    ASSERT_TRUE(run.ok());
    scalar_run = *std::move(run);
  }
  Clustering avx_run;
  {
    ScopedIsa pin(IsaLevel::kAvx2Fma);
    auto run = cluster::RunKMeans(blobs.points, options);
    ASSERT_TRUE(run.ok());
    avx_run = *std::move(run);
  }
  EXPECT_EQ(scalar_run.assignments, avx_run.assignments);
  EXPECT_EQ(scalar_run.sse, avx_run.sse);
  EXPECT_EQ(scalar_run.iterations, avx_run.iterations);
  for (size_t c = 0; c < scalar_run.centroids.rows(); ++c) {
    for (size_t d = 0; d < scalar_run.centroids.cols(); ++d) {
      EXPECT_EQ(scalar_run.centroids.At(c, d), avx_run.centroids.At(c, d));
    }
  }
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
