#include "transform/matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"

namespace adahealth {
namespace transform {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowSpanIsContiguousView) {
  Matrix m(2, 2);
  m.At(1, 0) = 3.0;
  std::span<double> row = m.Row(1);
  row[1] = 4.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4.0);
}

TEST(MatrixTest, ColumnMeans) {
  Matrix m(2, 2);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 2.0;
  m.At(1, 0) = 3.0;
  m.At(1, 1) = 4.0;
  std::vector<double> means = m.ColumnMeans();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
}

TEST(MatrixTest, L2NormalizeRows) {
  Matrix m(2, 2);
  m.At(0, 0) = 3.0;
  m.At(0, 1) = 4.0;
  // Row 1 stays zero.
  m.L2NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(MatrixTest, SelectRows) {
  Matrix m(3, 2);
  for (size_t r = 0; r < 3; ++r) m.At(r, 0) = static_cast<double>(r);
  Matrix selected = m.SelectRows({2, 0});
  EXPECT_EQ(selected.rows(), 2u);
  EXPECT_DOUBLE_EQ(selected.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(selected.At(1, 0), 0.0);
}

TEST(MatrixTest, SelectColumns) {
  Matrix m(2, 3);
  for (size_t c = 0; c < 3; ++c) m.At(0, c) = static_cast<double>(c * 10);
  Matrix selected = m.SelectColumns({2, 1});
  EXPECT_EQ(selected.cols(), 2u);
  EXPECT_DOUBLE_EQ(selected.At(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(selected.At(0, 1), 10.0);
}

TEST(VectorOpsTest, SquaredDistance) {
  std::vector<double> a{0.0, 3.0};
  std::vector<double> b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(VectorOpsTest, DotAndNorm) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(VectorOpsTest, CosineSimilarity) {
  std::vector<double> a{1.0, 0.0};
  std::vector<double> b{0.0, 1.0};
  std::vector<double> c{2.0, 0.0};
  std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(FusedKernelTest, RowSquaredNormsMatchDotWithinEnvelope) {
  // RowSquaredNorms routes through the runtime-dispatched SIMD kernel,
  // whose reassociated reduction may differ from the scalar Dot by the
  // documented fused-error envelope (it feeds only error-bounded
  // screens, never exact arithmetic).
  common::Rng rng(61);
  Matrix m(7, 13);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) = rng.Normal(0.0, 3.0);
  }
  std::vector<double> norms = RowSquaredNorms(m);
  ASSERT_EQ(norms.size(), m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double exact = Dot(m.Row(r), m.Row(r));
    EXPECT_NEAR(norms[r], exact, FusedRelativeError(m.cols()) * exact);
  }
}

TEST(FusedKernelTest, SquaredDistanceToAllWithinDocumentedError) {
  // The fused ‖x‖² + ‖c‖² − 2·x·c form rounds differently than the
  // naive Σ(x−c)², but its deviation must stay inside the bound that
  // the accelerated k-means screening relies on.
  common::Rng rng(67);
  for (size_t dims : {1u, 3u, 4u, 17u, 64u, 159u}) {
    Matrix centroids(9, dims);
    std::vector<double> point(dims);
    for (size_t d = 0; d < dims; ++d) point[d] = rng.Normal(1.0, 4.0);
    for (size_t c = 0; c < centroids.rows(); ++c) {
      for (size_t d = 0; d < dims; ++d) {
        centroids.At(c, d) = rng.Normal(-1.0, 4.0);
      }
    }
    // A near-duplicate row stresses catastrophic cancellation, the
    // worst case for the fused form.
    for (size_t d = 0; d < dims; ++d) {
      centroids.At(8, d) = point[d] * (1.0 + 1e-14);
    }
    const double point_norm2 = Dot(point, point);
    std::vector<double> centroid_norms = RowSquaredNorms(centroids);
    std::vector<double> fused(centroids.rows());
    SquaredDistanceToAll(point, point_norm2, centroids, centroid_norms,
                         fused);
    for (size_t c = 0; c < centroids.rows(); ++c) {
      const double exact = SquaredDistance(point, centroids.Row(c));
      const double budget =
          FusedRelativeError(dims) * (point_norm2 + centroid_norms[c]);
      EXPECT_LE(std::abs(fused[c] - exact), budget)
          << "dims=" << dims << " c=" << c;
    }
  }
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
