#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace adahealth {
namespace common {

namespace {

/// The spec grammar's CODE token: any canonical error-code name. OK is
/// rejected — a failpoint that fires must produce a failure.
StatusOr<StatusCode> ParseStatusCodeName(std::string_view name) {
  auto code = StatusCodeFromName(name);
  if (!code.ok()) return code;
  if (code.value() == StatusCode::kOk) {
    return InvalidArgumentError("failpoint error code must not be OK");
  }
  return code;
}

}  // namespace

FailpointConfig OneShotError(StatusCode code, std::string message) {
  FailpointConfig config;
  config.kind = FailpointConfig::Kind::kError;
  config.code = code;
  config.message = std::move(message);
  config.max_activations = 1;
  return config;
}

FailpointRegistry& FailpointRegistry::Default() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();  // Leaky singleton by design.
    // getenv races concurrent setenv, but this read happens once under
    // the function-local-static guard before any other thread can
    // touch the environment through us.
    if (const char* spec =
            std::getenv("ADA_FAILPOINTS");  // NOLINT(concurrency-mt-unsafe)
        spec != nullptr && spec[0] != '\0') {
      Status configured = r->Configure(spec);
      if (!configured.ok()) {
        ADA_LOG(kError) << "ignoring malformed ADA_FAILPOINTS: "
                        << configured.ToString();
      } else {
        ADA_LOG(kWarning) << "fault injection armed from ADA_FAILPOINTS: "
                          << spec;
      }
    }
    return r;
  }();
  return *registry;
}

StatusOr<FailpointConfig> FailpointRegistry::ParseAction(
    std::string_view action) {
  std::string_view rest = Trim(action);
  FailpointConfig config;

  // Modifiers bind tightest at the end: [*count][@nth].
  if (size_t at = rest.rfind('@'); at != std::string_view::npos &&
                                   at > rest.rfind(')')) {
    auto nth = ParseInt64(Trim(rest.substr(at + 1)));
    if (!nth.ok() || nth.value() < 1) {
      return InvalidArgumentError("bad '@nth' modifier in '" +
                                  std::string(action) + "' (want >= 1)");
    }
    config.first_hit = nth.value();
    rest = Trim(rest.substr(0, at));
  }
  if (size_t star = rest.rfind('*'); star != std::string_view::npos &&
                                     star > rest.rfind(')')) {
    auto count = ParseInt64(Trim(rest.substr(star + 1)));
    if (!count.ok() || count.value() < 1) {
      return InvalidArgumentError("bad '*count' modifier in '" +
                                  std::string(action) + "' (want >= 1)");
    }
    config.max_activations = count.value();
    rest = Trim(rest.substr(0, star));
  }

  if (rest == "off") {
    config.max_activations = 0;
    return config;
  }

  size_t open = rest.find('(');
  if (open == std::string_view::npos || rest.back() != ')') {
    return InvalidArgumentError("expected 'error(...)', 'delay(...)' or "
                                "'off', got '" +
                                std::string(action) + "'");
  }
  std::string_view trigger = Trim(rest.substr(0, open));
  std::string_view inner = rest.substr(open + 1, rest.size() - open - 2);

  if (trigger == "error") {
    config.kind = FailpointConfig::Kind::kError;
    std::string_view code_name = inner;
    if (size_t comma = inner.find(','); comma != std::string_view::npos) {
      code_name = inner.substr(0, comma);
      config.message = std::string(Trim(inner.substr(comma + 1)));
    }
    auto code = ParseStatusCodeName(Trim(code_name));
    if (!code.ok()) return code.status();
    config.code = code.value();
    return config;
  }
  if (trigger == "delay") {
    config.kind = FailpointConfig::Kind::kDelay;
    auto millis = ParseInt64(Trim(inner));
    if (!millis.ok() || millis.value() < 0) {
      return InvalidArgumentError("bad delay millis in '" +
                                  std::string(action) + "'");
    }
    config.delay_millis = millis.value();
    return config;
  }
  return InvalidArgumentError("unknown trigger '" + std::string(trigger) +
                              "' (want error/delay/off)");
}

Status FailpointRegistry::Configure(std::string_view spec) {
  std::map<std::string, FailpointConfig> parsed;
  for (const std::string& clause : Split(spec, ';')) {
    std::string_view trimmed = Trim(clause);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return InvalidArgumentError("failpoint clause '" +
                                  std::string(trimmed) +
                                  "' is not of the form point=action");
    }
    auto config = ParseAction(trimmed.substr(eq + 1));
    if (!config.ok()) return config.status();
    parsed[std::string(Trim(trimmed.substr(0, eq)))] =
        std::move(config).value();
  }
  MutexLock lock(&mutex_);
  armed_.clear();
  for (auto& [point, config] : parsed) {
    armed_[point] = ArmedPoint{std::move(config), 0};
  }
  return OkStatus();
}

void FailpointRegistry::Arm(const std::string& point,
                            FailpointConfig config) {
  MutexLock lock(&mutex_);
  armed_[point] = ArmedPoint{std::move(config), 0};
  hit_counts_[point] = 0;
}

void FailpointRegistry::Disarm(const std::string& point) {
  MutexLock lock(&mutex_);
  armed_.erase(point);
}

void FailpointRegistry::Clear() {
  MutexLock lock(&mutex_);
  armed_.clear();
  hit_counts_.clear();
}

Status FailpointRegistry::Evaluate(std::string_view point) {
  int64_t delay_millis = -1;
  Status triggered = OkStatus();
  {
    MutexLock lock(&mutex_);
    int64_t hit = ++hit_counts_[std::string(point)];
    auto it = armed_.find(point);
    if (it == armed_.end()) return OkStatus();
    ArmedPoint& armed = it->second;
    const FailpointConfig& config = armed.config;
    if (hit < config.first_hit) return OkStatus();
    if (config.max_activations >= 0 &&
        armed.activations >= config.max_activations) {
      return OkStatus();
    }
    ++armed.activations;
    if (config.kind == FailpointConfig::Kind::kDelay) {
      delay_millis = config.delay_millis;
    } else {
      std::string message = config.message.empty()
                                ? "injected failure at failpoint '" +
                                      std::string(point) + "'"
                                : config.message;
      triggered = Status(config.code, std::move(message));
    }
  }
  // Sleep and record metrics outside the lock.
  MetricsRegistry::Default().GetCounter("failpoint/triggered").Increment();
  if (delay_millis >= 0) {
    ADA_LOG(kWarning) << "failpoint '" << point << "' delaying "
                      << delay_millis << " ms";
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
    return OkStatus();
  }
  ADA_LOG(kWarning) << "failpoint '" << point
                    << "' firing: " << triggered.ToString();
  return triggered;
}

int64_t FailpointRegistry::hits(const std::string& point) const {
  MutexLock lock(&mutex_);
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::vector<std::string> FailpointRegistry::ArmedPoints() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> points;
  points.reserve(armed_.size());
  for (const auto& [point, armed] : armed_) points.push_back(point);
  return points;
}

}  // namespace common
}  // namespace adahealth
