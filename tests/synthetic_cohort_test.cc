#include "dataset/synthetic_cohort.h"

#include <set>

#include <gtest/gtest.h>
#include "stats/descriptors.h"

namespace adahealth {
namespace dataset {
namespace {

TEST(SyntheticCohortTest, TestScaleShape) {
  auto cohort = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  const ExamLog& log = cohort->log;
  EXPECT_EQ(log.num_patients(), 400u);
  EXPECT_EQ(log.num_exam_types(), 48u);
  // Expected records: 400 * 12 = 4800 +- sampling noise.
  EXPECT_GT(log.num_records(), 4300u);
  EXPECT_LT(log.num_records(), 5300u);
}

TEST(SyntheticCohortTest, DeterministicForSameSeed) {
  auto a = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  auto b = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->log.records(), b->log.records());
  EXPECT_EQ(a->log.patients(), b->log.patients());
}

TEST(SyntheticCohortTest, SeedChangesOutput) {
  CohortConfig config = TestScaleConfig();
  config.seed = 777;
  auto a = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  auto b = SyntheticCohortGenerator(config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->log.records(), b->log.records());
}

TEST(SyntheticCohortTest, AgesWithinPaperRange) {
  auto cohort = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  for (const Patient& patient : cohort->log.patients()) {
    EXPECT_GE(patient.age, 4);
    EXPECT_LE(patient.age, 95);
  }
}

TEST(SyntheticCohortTest, EveryProfileRepresented) {
  auto cohort = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  std::set<int32_t> profiles;
  for (const Patient& patient : cohort->log.patients()) {
    ASSERT_GE(patient.profile, 0);
    ASSERT_LT(patient.profile, 4);
    profiles.insert(patient.profile);
  }
  EXPECT_EQ(profiles.size(), 4u);
  EXPECT_EQ(cohort->profile_names.size(), 4u);
}

TEST(SyntheticCohortTest, EveryPatientHasAtLeastOneRecord) {
  auto cohort = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  for (int64_t count : cohort->log.RecordsPerPatient()) {
    EXPECT_GE(count, 1);
  }
}

TEST(SyntheticCohortTest, DaysWithinConfiguredPeriod) {
  CohortConfig config = TestScaleConfig();
  config.num_days = 90;
  auto cohort = SyntheticCohortGenerator(config).Generate();
  ASSERT_TRUE(cohort.ok());
  for (const ExamRecord& record : cohort->log.records()) {
    EXPECT_GE(record.day, 0);
    EXPECT_LT(record.day, 90);
  }
}

TEST(SyntheticCohortTest, TaxonomyMatchesDictionary) {
  auto cohort = SyntheticCohortGenerator(TestScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  EXPECT_EQ(cohort->taxonomy.num_leaves(), cohort->log.num_exam_types());
  // Each exam name is prefixed by its group name.
  for (size_t e = 0; e < cohort->log.num_exam_types(); ++e) {
    int32_t group = cohort->taxonomy.GroupOfLeaf(static_cast<int32_t>(e));
    const std::string& exam_name =
        cohort->log.dictionary().Name(static_cast<int32_t>(e));
    EXPECT_EQ(exam_name.rfind(cohort->taxonomy.GroupName(group), 0), 0u)
        << exam_name;
  }
}

TEST(SyntheticCohortTest, PaperScaleCoverageCurve) {
  // The headline property of the substitution: with the paper-scale
  // config, the top 20% of exam types cover ~70% of the records and
  // the top 40% cover ~85% (paper §IV-B).
  auto cohort = SyntheticCohortGenerator(PaperScaleConfig()).Generate();
  ASSERT_TRUE(cohort.ok());
  const ExamLog& log = cohort->log;
  EXPECT_EQ(log.num_patients(), 6380u);
  EXPECT_EQ(log.num_exam_types(), 159u);
  // ~95,788 records within 2%.
  EXPECT_NEAR(static_cast<double>(log.num_records()), 95788.0,
              0.02 * 95788.0);
  std::vector<int64_t> frequencies = log.ExamFrequencies();
  double top20 = stats::TopFractionCoverage(frequencies, 0.20);
  double top40 = stats::TopFractionCoverage(frequencies, 0.40);
  EXPECT_NEAR(top20, 0.70, 0.06);
  EXPECT_NEAR(top40, 0.85, 0.05);
}

TEST(SyntheticCohortTest, ProfilesShapeExamChoices) {
  // Patients of a profile should use its signature groups more often
  // than the cohort average (the recoverable cluster structure). The
  // boost is gated to specialized exams, so the vocabulary must be
  // large enough for groups to have specialized members.
  CohortConfig config = TestScaleConfig();
  config.num_exam_types = 159;
  auto cohort = SyntheticCohortGenerator(config).Generate();
  ASSERT_TRUE(cohort.ok());
  const ExamLog& log = cohort->log;
  const Taxonomy& taxonomy = cohort->taxonomy;
  // Profile 1 in the built-in spec is "cardiovascular" with signature
  // group 5 ("cardiology").
  int64_t cardio_profile_hits = 0;
  int64_t cardio_profile_total = 0;
  int64_t other_hits = 0;
  int64_t other_total = 0;
  for (const ExamRecord& record : log.records()) {
    bool cardio_exam =
        taxonomy.GroupName(taxonomy.GroupOfLeaf(record.exam_type)) ==
        "cardiology";
    if (log.patients()[static_cast<size_t>(record.patient)].profile == 1) {
      cardio_profile_hits += cardio_exam ? 1 : 0;
      ++cardio_profile_total;
    } else {
      other_hits += cardio_exam ? 1 : 0;
      ++other_total;
    }
  }
  ASSERT_GT(cardio_profile_total, 0);
  ASSERT_GT(other_total, 0);
  double profile_rate = static_cast<double>(cardio_profile_hits) /
                        static_cast<double>(cardio_profile_total);
  double other_rate =
      static_cast<double>(other_hits) / static_cast<double>(other_total);
  EXPECT_GT(profile_rate, 2.0 * other_rate);
}

TEST(SyntheticCohortTest, InvalidConfigsRejected) {
  CohortConfig config = TestScaleConfig();
  config.num_patients = 0;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.num_exam_types = 2;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.num_profiles = 9;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.mean_records_per_patient = 0.0;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.profile_boost = 0.5;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.num_days = 0;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());

  config = TestScaleConfig();
  config.zipf_exponent = -0.1;
  EXPECT_FALSE(SyntheticCohortGenerator(config).Generate().ok());
}

}  // namespace
}  // namespace dataset
}  // namespace adahealth
