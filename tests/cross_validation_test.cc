#include "ml/cross_validation.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "ml/decision_tree.h"
#include "ml/naive_bayes.h"
#include "test_util.h"

namespace adahealth {
namespace ml {
namespace {

TEST(StratifiedKFoldTest, PartitionsEverySampleOnce) {
  std::vector<int32_t> labels(30);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 3;
  auto folds = StratifiedKFold(labels, 3, 5, 17);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::vector<int> seen(labels.size(), 0);
  for (const Fold& fold : folds.value()) {
    for (size_t id : fold.test_ids) ++seen[id];
    // Train/test are disjoint and cover everything.
    std::set<size_t> train(fold.train_ids.begin(), fold.train_ids.end());
    for (size_t id : fold.test_ids) EXPECT_FALSE(train.contains(id));
    EXPECT_EQ(fold.train_ids.size() + fold.test_ids.size(), labels.size());
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFoldTest, PreservesClassProportions) {
  // 40 of class 0, 20 of class 1 -> each of 4 folds: 10/5.
  std::vector<int32_t> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(0);
  for (int i = 0; i < 20; ++i) labels.push_back(1);
  auto folds = StratifiedKFold(labels, 2, 4, 19);
  ASSERT_TRUE(folds.ok());
  for (const Fold& fold : folds.value()) {
    int class0 = 0;
    int class1 = 0;
    for (size_t id : fold.test_ids) {
      if (labels[id] == 0) {
        ++class0;
      } else {
        ++class1;
      }
    }
    EXPECT_EQ(class0, 10);
    EXPECT_EQ(class1, 5);
  }
}

TEST(StratifiedKFoldTest, DeterministicForSeed) {
  std::vector<int32_t> labels(20, 0);
  for (size_t i = 10; i < 20; ++i) labels[i] = 1;
  auto a = StratifiedKFold(labels, 2, 5, 21);
  auto b = StratifiedKFold(labels, 2, 5, 21);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t f = 0; f < a->size(); ++f) {
    EXPECT_EQ((*a)[f].test_ids, (*b)[f].test_ids);
  }
}

TEST(StratifiedKFoldTest, RejectsBadArguments) {
  std::vector<int32_t> labels{0, 1, 0, 1};
  EXPECT_FALSE(StratifiedKFold(labels, 2, 1, 1).ok());
  EXPECT_FALSE(StratifiedKFold(labels, 2, 5, 1).ok());
  EXPECT_FALSE(StratifiedKFold(labels, 0, 2, 1).ok());
  EXPECT_FALSE(StratifiedKFold({0, 3}, 2, 2, 1).ok());
}

TEST(StratifiedKFoldTest, RejectsClassSmallerThanFoldCount) {
  // Class 1 has two members: it cannot appear in each of 5 test folds.
  std::vector<int32_t> labels(20, 0);
  labels[3] = 1;
  labels[11] = 1;
  auto folds = StratifiedKFold(labels, 2, 5, 41);
  ASSERT_FALSE(folds.ok());
  EXPECT_EQ(folds.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(StratifiedKFoldTest, EmptyClassIsAllowed) {
  // num_classes = 3 but class 2 never occurs; stratification over the
  // present classes still works.
  std::vector<int32_t> labels;
  for (int i = 0; i < 10; ++i) labels.push_back(0);
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  auto folds = StratifiedKFold(labels, 3, 5, 43);
  ASSERT_TRUE(folds.ok());
  EXPECT_EQ(folds->size(), 5u);
}

TEST(CrossValidateTest, NearPerfectOnSeparableData) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {8.0, 8.0}}, 50, 0.5, 23);
  auto report = CrossValidate(
      blobs.points, blobs.labels, 2, 10, 25,
      [] { return std::make_unique<DecisionTreeClassifier>(); });
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.97);
  EXPECT_EQ(report->num_samples, 100);
}

TEST(CrossValidateTest, ChanceLevelOnRandomLabels) {
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0}}, 200, 1.0, 27);
  common::Rng rng(29);
  std::vector<int32_t> random_labels(blobs.points.rows());
  for (auto& label : random_labels) {
    label = static_cast<int32_t>(rng.UniformUint64(2));
  }
  auto report = CrossValidate(
      blobs.points, random_labels, 2, 5, 31,
      [] { return std::make_unique<GaussianNaiveBayes>(); });
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->accuracy, 0.65);  // No signal to learn.
}

TEST(CrossValidateTest, WorksWithNaiveBayesFactory) {
  test::Blobs blobs = test::MakeBlobs({{0.0}, {6.0}}, 40, 0.5, 33);
  auto report = CrossValidate(
      blobs.points, blobs.labels, 2, 4, 35,
      [] { return std::make_unique<GaussianNaiveBayes>(); });
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.95);
}

TEST(CrossValidateTest, RejectsMismatchedLabels) {
  test::Blobs blobs = test::MakeBlobs({{0.0}}, 10, 0.5, 37);
  std::vector<int32_t> labels(5, 0);
  auto report = CrossValidate(
      blobs.points, labels, 1, 2, 39,
      [] { return std::make_unique<DecisionTreeClassifier>(); });
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
