file(REMOVE_RECURSE
  "CMakeFiles/bench_endgoal_learning.dir/bench_endgoal_learning.cc.o"
  "CMakeFiles/bench_endgoal_learning.dir/bench_endgoal_learning.cc.o.d"
  "bench_endgoal_learning"
  "bench_endgoal_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_endgoal_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
