// Bulk-loaded kd-tree over the rows of a dense matrix.
//
// Each node caches the bounding box, the vector sum and the sum of
// squared norms of the points below it — exactly the sufficient
// statistics the Kanungo et al. filtering algorithm (paper ref [3])
// needs to assign whole subtrees to a centroid at once.
#ifndef ADAHEALTH_CLUSTER_KDTREE_H_
#define ADAHEALTH_CLUSTER_KDTREE_H_

#include <cstdint>
#include <vector>

#include "transform/matrix.h"

namespace adahealth {
namespace cluster {

/// Immutable kd-tree built over all rows of a matrix.
/// The referenced matrix must outlive the tree.
class KdTree {
 public:
  struct Node {
    /// Range [begin, end) into point_indices() covered by this node.
    size_t begin = 0;
    size_t end = 0;
    /// Axis-aligned bounding box of the covered points.
    std::vector<double> box_min;
    std::vector<double> box_max;
    /// Componentwise sum of the covered points.
    std::vector<double> sum;
    /// Sum of squared L2 norms of the covered points.
    double sum_squared_norms = 0.0;
    /// Child node ids; -1 for leaves (both or neither are set).
    int32_t left = -1;
    int32_t right = -1;

    bool is_leaf() const { return left < 0; }
    size_t count() const { return end - begin; }
  };

  /// Builds the tree by recursive median split along the widest box
  /// dimension. `leaf_size` bounds leaf cardinality (>= 1).
  explicit KdTree(const transform::Matrix& data, size_t leaf_size = 16);

  const transform::Matrix& data() const { return *data_; }
  const Node& node(size_t id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  /// Root node id (0); valid when the matrix has rows.
  size_t root() const { return 0; }
  /// Permutation of row ids; node ranges index into this array.
  const std::vector<size_t>& point_indices() const { return point_indices_; }

 private:
  int32_t BuildNode(size_t begin, size_t end, size_t leaf_size);

  const transform::Matrix* data_;
  std::vector<size_t> point_indices_;
  std::vector<Node> nodes_;
};

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_KDTREE_H_
