// Automatic data-transformation selection (paper §III: "The main
// research issue here is to define a totally automatic strategy to
// select the optimal data transformation, which yields higher quality
// knowledge").
//
// Strategy: every candidate VSM configuration is scored by a cheap
// proxy task — K-means on a patient sample, scored by the overall
// similarity interestingness metric — and the best-scoring
// configuration wins.
#ifndef ADAHEALTH_CORE_TRANSFORM_SELECTOR_H_
#define ADAHEALTH_CORE_TRANSFORM_SELECTOR_H_

#include <vector>

#include "common/status.h"
#include "dataset/exam_log.h"
#include "transform/vsm.h"

namespace adahealth {
namespace core {

struct TransformSelectorOptions {
  /// Candidate configurations; defaults cover count/binary/tf-idf with
  /// and without L2 normalization.
  std::vector<transform::VsmOptions> candidates;
  /// Patient sample fraction for the proxy task.
  double sample_fraction = 0.25;
  /// K of the proxy clustering.
  int32_t proxy_k = 8;
  uint64_t seed = 11;

  TransformSelectorOptions();
};

/// Score of one candidate. Overall similarity is not comparable across
/// representations (raw counts make every pair look alike), so the
/// selection criterion is the *lift*: the clustering's overall
/// similarity divided by the overall similarity of a random
/// assignment in the same space — how much structure the
/// transformation exposes beyond its baseline cohesion.
struct TransformCandidateScore {
  transform::VsmOptions options;
  double overall_similarity = 0.0;
  double baseline_similarity = 0.0;
  double lift = 0.0;
};

struct TransformSelection {
  /// All candidates with scores, in candidate order.
  std::vector<TransformCandidateScore> scores;
  /// Index of the winning candidate in `scores`.
  size_t best_index = 0;

  const transform::VsmOptions& best() const {
    return scores[best_index].options;
  }
};

/// Scores every candidate and picks the best. Fails on empty data or
/// invalid options.
[[nodiscard]] common::StatusOr<TransformSelection> SelectTransformation(
    const dataset::ExamLog& log, const TransformSelectorOptions& options);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_TRANSFORM_SELECTOR_H_
