#!/usr/bin/env bash
# Local pre-submit checks for ADA-HEALTH.
#
# Usage:
#   tools/run_checks.sh            # lint + warnings-as-errors build + tests
#   tools/run_checks.sh --quick    # lint only (no build)
#   tools/run_checks.sh --tidy     # additionally run clang-tidy (needs the
#                                  # clang-tidy binary on PATH)
#
# The script is what CI runs; keeping it green locally keeps CI green.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

QUICK=0
TIDY=0
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    --tidy) TIDY=1 ;;
    *)
      echo "unknown argument: ${arg}" >&2
      exit 2
      ;;
  esac
done

echo "== ada_lint =="
python3 tools/ada_lint.py src/ tests/ bench/ tools/ examples/

if [[ "${QUICK}" == "1" ]]; then
  echo "run_checks: lint clean (quick mode, skipping build)"
  exit 0
fi

BUILD_DIR="build-checks"
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release -DADA_WERROR=ON)
if [[ "${TIDY}" == "1" ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_checks: --tidy requested but clang-tidy is not on PATH" >&2
    exit 2
  fi
  CMAKE_ARGS+=(-DADA_CLANG_TIDY=ON)
fi

echo "== configure (${CMAKE_ARGS[*]}) =="
cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"

echo "== build (warnings are errors) =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== service targets =="
# The full build above already covers these; naming them here makes the
# check fail loudly if the server or client is ever dropped from the
# tools/ CMakeLists.
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ada_server ada_client
test -x "${BUILD_DIR}/tools/ada_server"
test -x "${BUILD_DIR}/tools/ada_client"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "run_checks: all checks passed"
