// Clustering quality indices.
//
// Two of these are the paper's interestingness metrics:
//  * SSE — "measures the cluster cohesion for center-based clustering
//    techniques as the total sum of squared errors" (§IV-A);
//  * overall similarity — "measures the cluster cohesiveness by
//    computing the internal pairwise similarity of patients within
//    each cluster, and then taking the weighted sum over the whole
//    cluster set" (§IV-A, citing Tan/Steinbach/Kumar [4]).
// Silhouette and Davies–Bouldin are provided for the optimizer
// ablations.
#ifndef ADAHEALTH_CLUSTER_QUALITY_H_
#define ADAHEALTH_CLUSTER_QUALITY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "transform/matrix.h"

namespace adahealth {
namespace cluster {

/// Total squared distance from each row to its assigned centroid.
double SumSquaredError(const transform::Matrix& data,
                       const std::vector<int32_t>& assignments,
                       const transform::Matrix& centroids);

/// Overall similarity (Tan/Steinbach/Kumar): the weighted sum over
/// clusters of the average pairwise cosine similarity within the
/// cluster, weights proportional to cluster size:
///
///   OS = sum_i (n_i / N) * (1 / n_i^2) * sum_{x,y in C_i} cos(x, y)
///
/// Rows are cosine-normalized internally, after which the inner double
/// sum collapses to ||mean of normalized members||^2, making the index
/// O(N * dims). Self-pairs are included, matching [4]. Result in
/// (0, 1]; higher is more cohesive.
double OverallSimilarity(const transform::Matrix& data,
                         const std::vector<int32_t>& assignments, int32_t k);

/// Reference O(N^2) implementation of OverallSimilarity used to verify
/// the closed form in tests. Prefer OverallSimilarity in real code.
double OverallSimilarityExact(const transform::Matrix& data,
                              const std::vector<int32_t>& assignments,
                              int32_t k);

/// Mean silhouette coefficient in [-1, 1]. Exact when data.rows() <=
/// `max_exact`; otherwise estimated on a deterministic sample of
/// `max_exact` points (seeded by `seed`). Requires k >= 2 and every
/// cluster non-empty.
double SilhouetteScore(const transform::Matrix& data,
                       const std::vector<int32_t>& assignments, int32_t k,
                       size_t max_exact = 2000, uint64_t seed = 7);

/// Davies–Bouldin index (lower is better). Requires k >= 2 and every
/// cluster non-empty.
double DaviesBouldinIndex(const transform::Matrix& data,
                          const std::vector<int32_t>& assignments, int32_t k);

/// Calinski–Harabasz index (between-cluster dispersion over
/// within-cluster dispersion, scaled by the degrees of freedom; higher
/// is better). Requires 2 <= k < data.rows() and every cluster
/// non-empty; returns 0 when within-cluster dispersion is zero.
double CalinskiHarabaszIndex(const transform::Matrix& data,
                             const std::vector<int32_t>& assignments,
                             int32_t k);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_QUALITY_H_
