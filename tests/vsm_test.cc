#include "transform/vsm.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adahealth {
namespace transform {
namespace {

dataset::ExamLog MakeLog() {
  std::vector<dataset::Patient> patients{{0, 50, -1}, {1, 60, -1},
                                         {2, 70, -1}};
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  auto b = dictionary.Intern("b");
  dictionary.Intern("never_used");
  std::vector<dataset::ExamRecord> records{
      {0, a, 1}, {0, a, 2}, {0, b, 3}, {1, a, 4}, {2, b, 5}, {2, b, 6}};
  return dataset::ExamLog(std::move(patients), std::move(dictionary),
                          std::move(records));
}

TEST(VsmTest, CountWeighting) {
  Matrix vsm = BuildVsm(MakeLog(), {VsmWeighting::kCount,
                                    VsmNormalization::kNone});
  EXPECT_EQ(vsm.rows(), 3u);
  EXPECT_EQ(vsm.cols(), 3u);
  EXPECT_DOUBLE_EQ(vsm.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(vsm.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(vsm.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(vsm.At(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(vsm.At(0, 2), 0.0);
}

TEST(VsmTest, BinaryWeighting) {
  Matrix vsm = BuildVsm(MakeLog(), {VsmWeighting::kBinary,
                                    VsmNormalization::kNone});
  EXPECT_DOUBLE_EQ(vsm.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(vsm.At(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(vsm.At(1, 1), 0.0);
}

TEST(VsmTest, TfIdfDeemphasizesUbiquitousExams) {
  // Exam a reaches 2/3 patients, exam b 2/3 patients; add one patient
  // with only a rare exam to differentiate: reuse the base log where
  // idf(a) = ln(3/2), idf(b) = ln(3/2).
  Matrix vsm = BuildVsm(MakeLog(), {VsmWeighting::kTfIdf,
                                    VsmNormalization::kNone});
  double idf = std::log(3.0 / 2.0);
  EXPECT_NEAR(vsm.At(0, 0), 2.0 * idf, 1e-12);
  EXPECT_NEAR(vsm.At(2, 1), 2.0 * idf, 1e-12);
  // Unused exam column is all zero (idf of 0-coverage exams unused).
  EXPECT_DOUBLE_EQ(vsm.At(0, 2), 0.0);
}

TEST(VsmTest, L2Normalization) {
  Matrix vsm = BuildVsm(MakeLog(), {VsmWeighting::kCount,
                                    VsmNormalization::kL2});
  for (size_t r = 0; r < vsm.rows(); ++r) {
    double norm = Norm(vsm.Row(r));
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(VsmTest, SparseMatchesDenseForAllConfigs) {
  dataset::ExamLog log = MakeLog();
  for (VsmWeighting weighting :
       {VsmWeighting::kCount, VsmWeighting::kBinary, VsmWeighting::kTfIdf}) {
    for (VsmNormalization normalization :
         {VsmNormalization::kNone, VsmNormalization::kL2}) {
      VsmOptions options{weighting, normalization};
      Matrix dense = BuildVsm(log, options);
      Matrix from_sparse = BuildSparseVsm(log, options).ToDense();
      ASSERT_EQ(dense.rows(), from_sparse.rows());
      ASSERT_EQ(dense.cols(), from_sparse.cols());
      for (size_t r = 0; r < dense.rows(); ++r) {
        for (size_t c = 0; c < dense.cols(); ++c) {
          EXPECT_NEAR(dense.At(r, c), from_sparse.At(r, c), 1e-12)
              << "weighting=" << VsmWeightingName(weighting)
              << " norm=" << VsmNormalizationName(normalization)
              << " cell (" << r << "," << c << ")";
        }
      }
    }
  }
}

TEST(VsmTest, BuildVsmAutoPicksRepresentationByDensity) {
  dataset::ExamLog log = MakeLog();
  // MakeLog's VSM is small and fairly dense; a permissive threshold
  // keeps it sparse, a zero threshold forces densification. Either way
  // the cells are the ones BuildVsm produces.
  Matrix dense = BuildVsm(log);

  VsmBuild sparse_pick = BuildVsmAuto(log, VsmOptions(), 1.0);
  EXPECT_TRUE(sparse_pick.is_sparse);
  EXPECT_GT(sparse_pick.density, 0.0);
  EXPECT_EQ(sparse_pick.dense.rows(), 0u);
  Matrix densified = sparse_pick.sparse.ToDense();
  ASSERT_EQ(densified.rows(), dense.rows());
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      EXPECT_DOUBLE_EQ(densified.At(r, c), dense.At(r, c));
    }
  }

  VsmBuild dense_pick = BuildVsmAuto(log, VsmOptions(), 0.0);
  EXPECT_FALSE(dense_pick.is_sparse);
  EXPECT_EQ(dense_pick.sparse.rows(), 0u);
  EXPECT_EQ(dense_pick.density, sparse_pick.density);
  ASSERT_EQ(dense_pick.dense.rows(), dense.rows());
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      EXPECT_DOUBLE_EQ(dense_pick.dense.At(r, c), dense.At(r, c));
    }
  }
}

TEST(VsmTest, PatientWithoutRecordsIsZeroRow) {
  std::vector<dataset::Patient> patients{{0, 50, -1}, {1, 60, -1}};
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  std::vector<dataset::ExamRecord> records{{0, a, 1}};
  dataset::ExamLog log(std::move(patients), std::move(dictionary),
                       std::move(records));
  Matrix vsm = BuildVsm(log, {VsmWeighting::kCount, VsmNormalization::kL2});
  EXPECT_DOUBLE_EQ(vsm.At(1, 0), 0.0);  // Zero row survives normalization.
}

TEST(VsmTest, EnumNames) {
  EXPECT_STREQ(VsmWeightingName(VsmWeighting::kTfIdf), "tfidf");
  EXPECT_STREQ(VsmNormalizationName(VsmNormalization::kL2), "l2");
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
