// The analysis service's newline-delimited-JSON wire protocol.
//
// Every request and every response is exactly one JSON object on one
// line. Requests carry a "verb"; responses carry "ok": true plus
// verb-specific fields, or "ok": false plus an "error" object that
// round-trips a common::Status:
//
//   -> {"verb":"submit","synthetic":{"patients":400,"seed":7}}
//   <- {"ok":true,"job_id":1,"state":"queued","fingerprint":"9f..."}
//   -> {"verb":"result","job_id":1,"wait_millis":60000}
//   <- {"ok":true,"state":"done","cache_hit":false,"summary":"..."}
//   -> {"verb":"status","job_id":99}
//   <- {"ok":false,"error":{"code":"NOT_FOUND","message":"no job..."}}
//
// Verbs: submit, status, result, cancel, stats, ping, health,
// shutdown, ingest — plus the cluster-internal promote and replicate
// verbs (see service/replication.h and service/router.h).
// Datasets are submitted either inline as CSV ("csv"), as a synthetic
// cohort spec ("synthetic") evaluated server-side — the latter keeps
// demo and smoke-test payloads tiny — or, for streaming cohorts, by
// naming an ingested "cohort" (service/cohort_store.h):
//
//   -> {"verb":"ingest","cohort":"icu","records":[
//        {"patient":0,"exam_type":"glucose","day":3}, ...]}
//   <- {"ok":true,"cohort":"icu","generation":2,"total_records":128}
//   -> {"verb":"submit","cohort":"icu"}
//   <- {"ok":true,"job_id":7,"fingerprint":"icu@2/9f..."}
//
// An ingest body may carry "expected_generation": the batch then
// commits only if the cohort is currently at exactly that generation
// (0 = not created yet), else FAILED_PRECONDITION with nothing
// applied — the replay guard that makes retrying a timed-out batch
// safe (ingest, unlike submit, is not idempotent; the router forwards
// it at most once).
#ifndef ADAHEALTH_SERVICE_PROTOCOL_H_
#define ADAHEALTH_SERVICE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "dataset/exam_log.h"
#include "service/scheduler.h"

namespace adahealth {
namespace service {

/// One parsed request line.
struct Request {
  std::string verb;
  common::Json body;  // The whole request object (verb included).
};

/// Parses one request line. INVALID_ARGUMENT on malformed JSON, a
/// non-object, or a missing/empty "verb".
[[nodiscard]] common::StatusOr<Request> ParseRequest(const std::string& line);

/// Serializes a success response: `fields` plus "ok": true, one line,
/// '\n'-terminated.
[[nodiscard]] std::string OkResponse(common::Json::Object fields);

/// Serializes an error response carrying `status` (code name and
/// message), one line, '\n'-terminated.
[[nodiscard]] std::string ErrorResponse(const common::Status& status);

/// Same, with top-level context fields next to "ok"/"error" (e.g. the
/// result verb's timeout error carries job_id and the job's current
/// state so the client can tell "still running" from "gone").
[[nodiscard]] std::string ErrorResponse(const common::Status& status,
                                        common::Json::Object extra_fields);

/// Client side: parses a response line. Returns the response object
/// when "ok" is true; reconstructs and returns the carried Status when
/// "ok" is false; INVALID_ARGUMENT on malformed responses.
[[nodiscard]] common::StatusOr<common::Json> ParseResponse(
    const std::string& line);

/// Builds the JobRequest described by a submit-request body: the
/// dataset from "csv" (inline records CSV) or "synthetic" (cohort spec:
/// patients, exam_types, profiles, mean_records, days, seed), plus the
/// optional knobs dataset_id, priority, deadline_millis, use_taxonomy
/// (synthetic only, default true) and an "options" object with the
/// supported session-option subset (candidate_ks, cv_folds, seed,
/// max_selected_items, restarts).
[[nodiscard]] common::StatusOr<JobRequest> BuildJobRequest(
    const common::Json& body);

/// Applies the dataset-independent submit knobs (dataset_id, "options"
/// object, priority, deadline_millis) from `body` onto `request`.
/// BuildJobRequest calls this after materializing the dataset; the
/// server reuses it for cohort submissions, whose dataset comes from
/// the CohortStore instead of the request body.
[[nodiscard]] common::Status ApplyJobOptionsFromBody(const common::Json& body,
                                                     JobRequest& request);

/// Parses an ingest-request "records" array (objects with integer
/// "patient", string "exam_type", optional integer "day") into raw
/// records. INVALID_ARGUMENT on a missing/empty array or malformed
/// rows; record-level validation (negative ids, empty names) is the
/// CohortStore's.
[[nodiscard]] common::StatusOr<std::vector<dataset::RawExamRecord>>
ParseIngestRecords(const common::Json& body);

/// Renders a job snapshot as the wire fields shared by the status and
/// result verbs. `include_artifacts` adds summary/report (the result
/// verb); status replies stay small.
[[nodiscard]] common::Json::Object SnapshotFields(const JobSnapshot& snapshot,
                                                  bool include_artifacts);

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_PROTOCOL_H_
