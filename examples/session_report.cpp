// Domain example 4 — the artifact a physician would actually receive:
// a Markdown analysis report generated from a full ADA-HEALTH session,
// including the cluster profiles, frequent patterns, rules and the
// atypical-patient (outlier) summary, plus per-collection K-DB usage.
//
// Two entry points into the same analysis:
//   ./session_report            direct AnalysisSession::Run (default)
//   ./session_report --service  the same job submitted to an
//                               in-process service::Scheduler
// The rendered report is byte-identical either way — that determinism
// is what lets the service answer repeat submissions from its
// fingerprint cache (see DESIGN.md section 10).
#include <cstdio>
#include <cstring>

#include "core/report.h"
#include "kdb/aggregate.h"
#include "service/scheduler.h"

namespace {

using namespace adahealth;

int RunThroughService(dataset::Cohort cohort,
                      const core::SessionOptions& options) {
  service::SchedulerOptions scheduler_options;
  scheduler_options.max_workers = 1;
  service::Scheduler scheduler(std::move(scheduler_options));

  service::JobRequest job;
  job.log = std::move(cohort.log);
  job.taxonomy = std::move(cohort.taxonomy);
  job.options = options;
  auto id = scheduler.Submit(std::move(job));
  if (!id.ok()) {
    std::printf("submit failed: %s\n", id.status().ToString().c_str());
    return 1;
  }
  auto snapshot = scheduler.AwaitResult(id.value());
  if (!snapshot.ok() || snapshot->state != service::JobState::kDone) {
    const common::Status& status =
        snapshot.ok() ? snapshot->status : snapshot.status();
    std::printf("job failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s", snapshot->report.c_str());

  // Appendix: what the service layer adds on top of the session.
  std::printf("## Service appendix\n\n");
  std::printf("job %lld: fingerprint %s, cache_hit %s\n",
              static_cast<long long>(snapshot->id),
              snapshot->fingerprint.c_str(),
              snapshot->cache_hit ? "true" : "false");
  std::printf("wait %.3fs, run %.3fs, %lld knowledge items\n",
              snapshot->wait_seconds, snapshot->run_seconds,
              static_cast<long long>(snapshot->knowledge_items));
  return 0;
}

int RunDirect(dataset::Cohort cohort,
              const core::SessionOptions& options) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  auto result = session.Run(cohort.log, &cohort.taxonomy, options);
  if (!result.ok()) {
    std::printf("session failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", core::RenderSessionReport(result.value(),
                                              options.dataset_id)
                        .c_str());

  // Appendix: K-DB usage via the aggregation API.
  std::printf("## K-DB appendix\n\n");
  kdb::Collection& items = db.GetOrCreate(kdb::Schema::kKnowledgeItems);
  std::printf("knowledge items by kind:\n");
  for (const auto& [kind, count] :
       kdb::GroupCount(items, "item.kind")) {
    std::printf("  %-12s %lld\n", kind.c_str(),
                static_cast<long long>(count));
  }
  kdb::FieldStats quality = kdb::Aggregate(items, "item.quality");
  std::printf("quality: mean %.3f, min %.3f, max %.3f over %lld items\n",
              quality.mean, quality.min, quality.max,
              static_cast<long long>(quality.count));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool through_service = argc > 1 && std::strcmp(argv[1], "--service") == 0;

  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 1200;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }

  core::SessionOptions options;
  options.dataset_id = "clinic-2016";
  options.optimizer.candidate_ks = {6, 8, 10};

  return through_service
             ? RunThroughService(std::move(cohort).value(), options)
             : RunDirect(std::move(cohort).value(), options);
}
