#include "kdb/collection.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

Document Doc(const std::string& kind, int64_t value) {
  Document document;
  document.Set("kind", Json(kind));
  document.Set("value", Json(value));
  return document;
}

TEST(CollectionTest, InsertAssignsSequentialIds) {
  Collection collection("items");
  EXPECT_EQ(collection.Insert(Doc("a", 1)), 1);
  EXPECT_EQ(collection.Insert(Doc("b", 2)), 2);
  EXPECT_EQ(collection.size(), 2u);
  EXPECT_EQ(collection.last_id(), 2);
}

TEST(CollectionTest, FindById) {
  Collection collection("items");
  DocumentId id = collection.Insert(Doc("a", 7));
  auto found = collection.FindById(id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->Get("value")->AsInt(), 7);
  EXPECT_FALSE(collection.FindById(999).ok());
}

TEST(CollectionTest, FindWithFilter) {
  Collection collection("items");
  collection.Insert(Doc("a", 1));
  collection.Insert(Doc("b", 2));
  collection.Insert(Doc("a", 3));
  auto matches = collection.Find(Query().Eq("kind", Json("a")));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].Get("value")->AsInt(), 1);
  EXPECT_EQ(matches[1].Get("value")->AsInt(), 3);
}

TEST(CollectionTest, FindRespectsLimit) {
  Collection collection("items");
  for (int64_t i = 0; i < 10; ++i) collection.Insert(Doc("x", i));
  EXPECT_EQ(collection.Find(Query::All(), 3).size(), 3u);
  EXPECT_EQ(collection.Find(Query::All()).size(), 10u);
}

TEST(CollectionTest, FindOneAndCount) {
  Collection collection("items");
  collection.Insert(Doc("a", 1));
  collection.Insert(Doc("a", 2));
  auto first = collection.FindOne(Query().Eq("kind", Json("a")));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Get("value")->AsInt(), 1);
  EXPECT_EQ(collection.Count(Query().Eq("kind", Json("a"))), 2u);
  EXPECT_FALSE(collection.FindOne(Query().Eq("kind", Json("z"))).ok());
}

TEST(CollectionTest, UpdateByIdMergesFields) {
  Collection collection("items");
  DocumentId id = collection.Insert(Doc("a", 1));
  Json::Object update;
  update["value"] = Json(int64_t{10});
  update["extra"] = Json("new");
  update["_id"] = Json(int64_t{999});  // Must be ignored.
  ASSERT_TRUE(collection.UpdateById(id, Json(std::move(update))).ok());
  auto found = collection.FindById(id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->Get("value")->AsInt(), 10);
  EXPECT_EQ(found->Get("extra")->AsString(), "new");
  EXPECT_EQ(found->Get("kind")->AsString(), "a");  // Untouched.
  EXPECT_EQ(found->id(), id);                      // Id immutable.
}

TEST(CollectionTest, UpdateErrors) {
  Collection collection("items");
  DocumentId id = collection.Insert(Doc("a", 1));
  EXPECT_FALSE(collection.UpdateById(999, Json(Json::Object{})).ok());
  EXPECT_FALSE(collection.UpdateById(id, Json(int64_t{1})).ok());
}

TEST(CollectionTest, DeleteById) {
  Collection collection("items");
  DocumentId first = collection.Insert(Doc("a", 1));
  DocumentId second = collection.Insert(Doc("b", 2));
  ASSERT_TRUE(collection.DeleteById(first).ok());
  EXPECT_EQ(collection.size(), 1u);
  EXPECT_FALSE(collection.FindById(first).ok());
  EXPECT_TRUE(collection.FindById(second).ok());
  EXPECT_FALSE(collection.DeleteById(first).ok());
  // Ids are not reused after deletion.
  EXPECT_GT(collection.Insert(Doc("c", 3)), second);
}

TEST(CollectionTest, IndexAcceleratedEqualityFind) {
  Collection collection("items");
  collection.CreateIndex("kind");
  for (int64_t i = 0; i < 100; ++i) {
    collection.Insert(Doc(i % 2 == 0 ? "even" : "odd", i));
  }
  auto evens = collection.Find(Query().Eq("kind", Json("even")));
  EXPECT_EQ(evens.size(), 50u);
  // Index + extra condition.
  auto filtered = collection.Find(Query()
                                      .Eq("kind", Json("even"))
                                      .Where("value", QueryOp::kLt,
                                             Json(int64_t{10})));
  EXPECT_EQ(filtered.size(), 5u);
}

TEST(CollectionTest, IndexCreatedAfterInsertsStillWorks) {
  Collection collection("items");
  for (int64_t i = 0; i < 20; ++i) collection.Insert(Doc("k", i));
  collection.CreateIndex("value");
  auto matches = collection.Find(Query().Eq("value", Json(int64_t{7})));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].Get("value")->AsInt(), 7);
}

TEST(CollectionTest, IndexSurvivesUpdatesAndDeletes) {
  Collection collection("items");
  collection.CreateIndex("kind");
  DocumentId id = collection.Insert(Doc("a", 1));
  collection.Insert(Doc("a", 2));
  Json::Object update;
  update["kind"] = Json("b");
  ASSERT_TRUE(collection.UpdateById(id, Json(std::move(update))).ok());
  EXPECT_EQ(collection.Find(Query().Eq("kind", Json("a"))).size(), 1u);
  EXPECT_EQ(collection.Find(Query().Eq("kind", Json("b"))).size(), 1u);
  ASSERT_TRUE(collection.DeleteById(id).ok());
  EXPECT_EQ(collection.Find(Query().Eq("kind", Json("b"))).size(), 0u);
}

TEST(CollectionTest, IndexMissBypassesScan) {
  Collection collection("items");
  collection.CreateIndex("kind");
  collection.Insert(Doc("a", 1));
  EXPECT_TRUE(collection.Find(Query().Eq("kind", Json("zzz"))).empty());
}

TEST(CollectionTest, RestorePreservesIdsAndAdvancesCounter) {
  Collection collection("items");
  auto document = Document::Parse(R"({"_id": 10, "kind": "restored"})");
  ASSERT_TRUE(document.ok());
  ASSERT_TRUE(collection.Restore(document.value()).ok());
  EXPECT_TRUE(collection.FindById(10).ok());
  EXPECT_EQ(collection.Insert(Doc("next", 1)), 11);
}

TEST(CollectionTest, RestoreRejectsDuplicatesAndBadIds) {
  Collection collection("items");
  auto document = Document::Parse(R"({"_id": 3})");
  ASSERT_TRUE(document.ok());
  ASSERT_TRUE(collection.Restore(document.value()).ok());
  EXPECT_FALSE(collection.Restore(document.value()).ok());
  auto no_id = Document::Parse(R"({"x": 1})");
  ASSERT_TRUE(no_id.ok());
  EXPECT_FALSE(collection.Restore(no_id.value()).ok());
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
