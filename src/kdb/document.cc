#include "kdb/document.h"

#include <vector>

#include "common/string_util.h"

namespace adahealth {
namespace kdb {

using common::Json;
using common::StatusOr;

// GCC 12's -Wmaybe-uninitialized misfires on moved-from std::variant
// alternatives inside Json when this constructor call is inlined at -O2
// (all paths initialize the variant); scoped suppression keeps -Werror
// builds clean without disabling the check elsewhere.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
StatusOr<Document> Document::FromJson(Json json) {
  if (!json.is_object()) {
    return common::InvalidArgumentError("document must be a JSON object");
  }
  return Document(std::move(json));
}
#pragma GCC diagnostic pop

StatusOr<Document> Document::Parse(std::string_view text) {
  auto json = Json::Parse(text);
  if (!json.ok()) return json.status();
  return FromJson(std::move(json).value());
}

DocumentId Document::id() const {
  const Json* field = json_.Find("_id");
  if (field == nullptr || !field->is_int()) return 0;
  return field->AsInt();
}

void Document::Set(std::string_view field, Json value) {
  json_.MutableObject()[std::string(field)] = std::move(value);
}

const Json* Document::Get(std::string_view path) const {
  const Json* current = &json_;
  for (const std::string& part : common::Split(path, '.')) {
    if (!current->is_object()) return nullptr;
    current = current->Find(part);
    if (current == nullptr) return nullptr;
  }
  return current;
}

void Document::set_id(DocumentId id) { Set("_id", Json(id)); }

}  // namespace kdb
}  // namespace adahealth
