#include "transform/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "transform/simd_kernels.h"

namespace adahealth {
namespace transform {

common::Status CsrMatrix::Builder::AddRow(
    const std::vector<SparseEntry>& entries) {
  // Validate the whole row before touching the arrays so a rejected
  // row leaves the builder exactly as it was.
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].column >= cols_) {
      return common::InvalidArgumentError(
          "sparse row entry column " + std::to_string(entries[i].column) +
          " out of range (cols=" + std::to_string(cols_) + ")");
    }
    if (i > 0 && entries[i].column <= entries[i - 1].column) {
      return common::InvalidArgumentError(
          "sparse row columns must be strictly increasing (column " +
          std::to_string(entries[i].column) + " after " +
          std::to_string(entries[i - 1].column) + ")");
    }
    if (std::isnan(entries[i].value)) {
      return common::InvalidArgumentError(
          "sparse row entry at column " +
          std::to_string(entries[i].column) + " is NaN");
    }
  }
  for (const SparseEntry& entry : entries) {
    if (entry.value != 0.0) entries_.push_back(entry);
  }
  row_offsets_.push_back(entries_.size());
  return common::OkStatus();
}

CsrMatrix CsrMatrix::Builder::Build() && {
  return CsrMatrix(cols_, std::move(row_offsets_), std::move(entries_));
}

std::span<const SparseEntry> CsrMatrix::Row(size_t row) const {
  ADA_CHECK_LT(row, rows());
  return std::span<const SparseEntry>(
      entries_.data() + row_offsets_[row],
      row_offsets_[row + 1] - row_offsets_[row]);
}

Matrix CsrMatrix::ToDense() const {
  Matrix dense(rows(), cols_);
  for (size_t r = 0; r < rows(); ++r) {
    for (const SparseEntry& entry : Row(r)) {
      dense.At(r, entry.column) = entry.value;
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense) {
  Builder builder(dense.cols());
  std::vector<SparseEntry> row_entries;
  for (size_t r = 0; r < dense.rows(); ++r) {
    row_entries.clear();
    std::span<const double> row = dense.Row(r);
    for (size_t c = 0; c < dense.cols(); ++c) {
      if (row[c] != 0.0) {
        row_entries.push_back({static_cast<uint32_t>(c), row[c]});
      }
    }
    // Columns are increasing and in range by construction; only a NaN
    // cell can fail, which is a caller error here (screen first).
    ADA_CHECK_OK(builder.AddRow(row_entries));
  }
  return std::move(builder).Build();
}

double CsrMatrix::Density() const {
  double cells = static_cast<double>(rows()) * static_cast<double>(cols_);
  return cells > 0.0 ? static_cast<double>(entries_.size()) / cells : 0.0;
}

double SparseDot(std::span<const SparseEntry> a,
                 std::span<const SparseEntry> b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].column == b[j].column) {
      sum += a[i].value * b[j].value;
      ++i;
      ++j;
    } else if (a[i].column < b[j].column) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SparseCosineSimilarity(std::span<const SparseEntry> a,
                              std::span<const SparseEntry> b) {
  double norm_a = 0.0;
  for (const SparseEntry& entry : a) norm_a += entry.value * entry.value;
  double norm_b = 0.0;
  for (const SparseEntry& entry : b) norm_b += entry.value * entry.value;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return SparseDot(a, b) / std::sqrt(norm_a * norm_b);
}

std::vector<double> RowSquaredNorms(const CsrMatrix& m) {
  std::vector<double> norms(m.rows(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (const SparseEntry& entry : m.Row(r)) {
      sum += entry.value * entry.value;
    }
    norms[r] = sum;
  }
  return norms;
}

double SparseSquaredDistance(std::span<const SparseEntry> row,
                             std::span<const double> dense) {
  // One sequential accumulator folding a term per dimension in order —
  // the exact operation sequence of the dense SquaredDistance. For the
  // zero dimensions between non-zeros, (0.0 - b) * (0.0 - b) == b * b
  // in IEEE-754 (negation flips only the sign bit; the product's sign
  // bits cancel), so the run loop skips materializing the subtraction.
  double sum = 0.0;
  size_t d = 0;
  for (const SparseEntry& entry : row) {
    ADA_CHECK_LT(entry.column, dense.size());
    for (; d < entry.column; ++d) sum += dense[d] * dense[d];
    const double diff = entry.value - dense[d];
    sum += diff * diff;
    ++d;
  }
  for (; d < dense.size(); ++d) sum += dense[d] * dense[d];
  return sum;
}

void SparseSquaredDistanceToAll(std::span<const SparseEntry> row,
                                double row_norm2, const Matrix& centroids_t,
                                std::span<const double> centroid_norms2,
                                std::span<double> out) {
  const size_t k = centroids_t.cols();
  ADA_CHECK_EQ(centroid_norms2.size(), k);
  ADA_CHECK_GE(out.size(), k);
  std::span<double> acc = out.subspan(0, k);
  std::fill(acc.begin(), acc.end(), 0.0);
  if (k < 16) {
    // Below ~2 vector widths the per-entry dispatch call costs more
    // than the handful of multiply-adds it would vectorize; inline the
    // scalar loop (still within the FusedRelativeError envelope).
    for (const SparseEntry& entry : row) {
      ADA_CHECK_LT(entry.column, centroids_t.rows());
      const double v = entry.value;
      std::span<const double> col = centroids_t.Row(entry.column);
      for (size_t c = 0; c < k; ++c) acc[c] += v * col[c];
    }
  } else {
    for (const SparseEntry& entry : row) {
      ADA_CHECK_LT(entry.column, centroids_t.rows());
      // Row `column` of the transposed block is the k centroid values
      // of that dimension, contiguous — a SIMD-friendly axpy per
      // non-zero.
      simd::Axpy(entry.value, centroids_t.Row(entry.column), acc);
    }
  }
  for (size_t c = 0; c < k; ++c) {
    out[c] = row_norm2 + centroid_norms2[c] - 2.0 * out[c];
  }
}

void AccumulateRow(std::span<const SparseEntry> row, std::span<double> sum) {
  for (const SparseEntry& entry : row) {
    ADA_CHECK_LT(entry.column, sum.size());
    sum[entry.column] += entry.value;
  }
}

void DensifyRow(std::span<const SparseEntry> row, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (const SparseEntry& entry : row) {
    ADA_CHECK_LT(entry.column, out.size());
    out[entry.column] = entry.value;
  }
}

}  // namespace transform
}  // namespace adahealth
