// RAII POSIX socket wrappers for the NDJSON protocol server.
//
// This is the only layer of the tree allowed to call the raw fd
// syscalls (socket/accept/close — enforced by the ada_lint `raw-socket`
// rule): everything above holds fds through the move-only
// FileDescriptor owner, so no error path can leak or double-close one.
//
// Two I/O idioms coexist:
//  * blocking helpers (Accept, SendAll, LineReader) used by the client
//    bindings and the tests;
//  * non-blocking helpers (TryAccept, RecvNonBlocking, SendNonBlocking,
//    SetNonBlocking) used by the server's epoll event loop, which must
//    never park a thread inside a syscall.
//
// The server binds the IPv4 loopback only: the analysis service is an
// in-host component (an analyst tool or a sidecar), not an
// internet-facing endpoint.
//
// Failpoints: "service.net.accept", "service.net.read",
// "service.net.write" — injected at every socket I/O boundary, on both
// the blocking and the non-blocking paths.
#ifndef ADAHEALTH_SERVICE_NET_SOCKET_H_
#define ADAHEALTH_SERVICE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace adahealth {
namespace service {

/// Ceiling on one NDJSON line (request or response). Readers that
/// accumulate this much without seeing a newline fail with
/// RESOURCE_EXHAUSTED instead of growing without bound — a client
/// streaming newline-less bytes must not OOM the server.
inline constexpr size_t kMaxLineBytes = 4u << 20;  // 4 MiB

/// Move-only owner of one POSIX file descriptor; closes on
/// destruction.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(FileDescriptor&& other) noexcept;
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }

  /// Closes now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Switches the descriptor to non-blocking mode (O_NONBLOCK).
[[nodiscard]] common::Status SetNonBlocking(const FileDescriptor& fd);

/// A listening TCP socket bound to 127.0.0.1.
class ServerSocket {
 public:
  ServerSocket() = default;

  /// Binds and listens on loopback `port` (0 = kernel-assigned
  /// ephemeral port, reported by port()). UNAVAILABLE on any syscall
  /// failure (e.g. the port is taken).
  [[nodiscard]] static common::StatusOr<ServerSocket> Listen(
      uint16_t port, int backlog = 128);

  /// Blocks for one connection. UNAVAILABLE once the socket has been
  /// shut down (an exit signal for blocking accept loops) or on accept
  /// failure.
  [[nodiscard]] common::StatusOr<FileDescriptor> Accept() const;

  /// Non-blocking accept for the event loop: an *invalid*
  /// FileDescriptor means no connection was pending (EAGAIN); a valid
  /// one is already in non-blocking mode. Errors are UNAVAILABLE.
  [[nodiscard]] common::StatusOr<FileDescriptor> TryAccept() const;

  /// Unblocks any in-flight Accept() from another thread without
  /// releasing the fd (close happens at destruction, so the fd number
  /// cannot be reused while a racing accept still references it).
  void Shutdown() const;

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] const FileDescriptor& descriptor() const { return fd_; }

 private:
  FileDescriptor fd_;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`. UNAVAILABLE when nothing listens.
///
/// A connect() interrupted by a signal keeps completing asynchronously
/// on Linux — a naive retry then fails with EALREADY (or EISCONN once
/// done) and would misreport an established connection as an error.
/// This helper treats EISCONN as success and finishes interrupted
/// connects via FinishConnect (writability + SO_ERROR).
[[nodiscard]] common::StatusOr<FileDescriptor> ConnectLoopback(uint16_t port);

/// Completes an asynchronously-proceeding connect(): waits (poll) until
/// the socket is writable, then reads SO_ERROR for the real verdict.
/// OK when the connection is established; UNAVAILABLE when the connect
/// failed; DEADLINE_EXCEEDED when `timeout_millis` >= 0 elapses first.
[[nodiscard]] common::Status FinishConnect(const FileDescriptor& fd,
                                           int timeout_millis = -1);

/// Half-closes both directions of a connected socket from another
/// thread: a peer blocked in recv on `fd` wakes with end-of-stream.
/// Like ServerSocket::Shutdown, the fd itself stays owned and open.
void ShutdownConnection(const FileDescriptor& fd);

/// Arms SO_RCVTIMEO: a blocking read on `fd` fails with UNAVAILABLE
/// (EAGAIN) after `timeout_millis` instead of parking the thread
/// forever — how the router and the replication shipper bound reads
/// against a wedged (but not dead) peer. <= 0 restores block-forever.
[[nodiscard]] common::Status SetRecvTimeout(const FileDescriptor& fd,
                                            double timeout_millis);

/// Writes all of `data`, resuming partial writes (blocking sockets).
/// UNAVAILABLE on a closed peer or I/O error.
[[nodiscard]] common::Status SendAll(const FileDescriptor& fd,
                                     std::string_view data);

/// One non-blocking send attempt: returns the number of bytes written,
/// 0 when the socket buffer is full (EAGAIN — retry on writability).
/// UNAVAILABLE on a closed peer or I/O error.
[[nodiscard]] common::StatusOr<size_t> SendNonBlocking(
    const FileDescriptor& fd, std::string_view data);

/// Outcome of one non-blocking read attempt.
struct RecvResult {
  size_t bytes = 0;        // Bytes placed into the buffer.
  bool would_block = false;  // EAGAIN: nothing to read right now.
  bool eof = false;          // Clean end-of-stream.
};

/// One non-blocking recv attempt into `buffer` (capacity bytes).
/// UNAVAILABLE on I/O errors.
[[nodiscard]] common::StatusOr<RecvResult> RecvNonBlocking(
    const FileDescriptor& fd, char* buffer, size_t capacity);

/// Buffered newline-delimited reader over one connection (blocking).
class LineReader {
 public:
  explicit LineReader(const FileDescriptor& fd,
                      size_t max_line_bytes = kMaxLineBytes)
      : fd_(&fd), max_line_bytes_(max_line_bytes) {}

  /// Returns the next line without its trailing '\n'. OUT_OF_RANGE on
  /// clean end-of-stream, RESOURCE_EXHAUSTED when the peer streams
  /// more than max_line_bytes without a newline, UNAVAILABLE on I/O
  /// errors.
  [[nodiscard]] common::StatusOr<std::string> ReadLine();

 private:
  const FileDescriptor* fd_;
  std::string buffer_;
  size_t max_line_bytes_;
  bool eof_ = false;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_NET_SOCKET_H_
