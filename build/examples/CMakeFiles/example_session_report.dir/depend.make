# Empty dependencies file for example_session_report.
# This may be replaced when dependencies are built.
