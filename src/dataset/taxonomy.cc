#include "dataset/taxonomy.h"

#include "common/check.h"

namespace adahealth {
namespace dataset {

using common::InvalidArgumentError;
using common::StatusOr;

StatusOr<Taxonomy> Taxonomy::Build(std::vector<int32_t> leaf_group,
                                   std::vector<std::string> group_names,
                                   std::vector<int32_t> group_category,
                                   std::vector<std::string> category_names) {
  if (leaf_group.empty() || group_names.empty() || category_names.empty()) {
    return InvalidArgumentError("taxonomy levels must be non-empty");
  }
  if (group_category.size() != group_names.size()) {
    return InvalidArgumentError(
        "group_category and group_names sizes disagree");
  }
  for (int32_t g : leaf_group) {
    if (g < 0 || static_cast<size_t>(g) >= group_names.size()) {
      return InvalidArgumentError("leaf_group index out of range");
    }
  }
  for (int32_t c : group_category) {
    if (c < 0 || static_cast<size_t>(c) >= category_names.size()) {
      return InvalidArgumentError("group_category index out of range");
    }
  }
  Taxonomy taxonomy;
  taxonomy.leaf_group_ = std::move(leaf_group);
  taxonomy.group_names_ = std::move(group_names);
  taxonomy.group_category_ = std::move(group_category);
  taxonomy.category_names_ = std::move(category_names);
  return taxonomy;
}

int32_t Taxonomy::GroupOfLeaf(ExamTypeId exam) const {
  // invariant: ids were produced by this taxonomy (Build
  // validated the level tables); out-of-range is a programmer
  // error, not a data error.
  ADA_CHECK_GE(exam, 0);
  ADA_CHECK_LT(static_cast<size_t>(exam), leaf_group_.size());
  return leaf_group_[static_cast<size_t>(exam)];
}

int32_t Taxonomy::CategoryOfGroup(int32_t group) const {
  // invariant: ids were produced by this taxonomy (Build
  // validated the level tables); out-of-range is a programmer
  // error, not a data error.
  ADA_CHECK_GE(group, 0);
  ADA_CHECK_LT(static_cast<size_t>(group), group_category_.size());
  return group_category_[static_cast<size_t>(group)];
}

int32_t Taxonomy::CategoryOfLeaf(ExamTypeId exam) const {
  return CategoryOfGroup(GroupOfLeaf(exam));
}

const std::string& Taxonomy::GroupName(int32_t group) const {
  // invariant: ids were produced by this taxonomy (Build
  // validated the level tables); out-of-range is a programmer
  // error, not a data error.
  ADA_CHECK_GE(group, 0);
  ADA_CHECK_LT(static_cast<size_t>(group), group_names_.size());
  return group_names_[static_cast<size_t>(group)];
}

const std::string& Taxonomy::CategoryName(int32_t category) const {
  // invariant: ids were produced by this taxonomy (Build
  // validated the level tables); out-of-range is a programmer
  // error, not a data error.
  ADA_CHECK_GE(category, 0);
  ADA_CHECK_LT(static_cast<size_t>(category), category_names_.size());
  return category_names_[static_cast<size_t>(category)];
}

int Taxonomy::LevelOf(TaxonomyNodeId node) const {
  // invariant: ids were produced by this taxonomy (Build
  // validated the level tables); out-of-range is a programmer
  // error, not a data error.
  ADA_CHECK_GE(node, 0);
  size_t id = static_cast<size_t>(node);
  ADA_CHECK_LT(id, num_nodes());
  if (id < num_leaves()) return 0;
  if (id < num_leaves() + num_groups()) return 1;
  return 2;
}

TaxonomyNodeId Taxonomy::ParentOf(TaxonomyNodeId node) const {
  switch (LevelOf(node)) {
    case 0:
      return GroupNode(GroupOfLeaf(node));
    case 1: {
      int32_t group = node - static_cast<TaxonomyNodeId>(num_leaves());
      return CategoryNode(CategoryOfGroup(group));
    }
    default:
      return -1;
  }
}

std::vector<ExamTypeId> Taxonomy::LeavesUnder(TaxonomyNodeId node) const {
  std::vector<ExamTypeId> leaves;
  switch (LevelOf(node)) {
    case 0:
      leaves.push_back(node);
      break;
    case 1: {
      int32_t group = node - static_cast<TaxonomyNodeId>(num_leaves());
      for (size_t e = 0; e < leaf_group_.size(); ++e) {
        if (leaf_group_[e] == group) {
          leaves.push_back(static_cast<ExamTypeId>(e));
        }
      }
      break;
    }
    default: {
      int32_t category =
          node - static_cast<TaxonomyNodeId>(num_leaves() + num_groups());
      for (size_t e = 0; e < leaf_group_.size(); ++e) {
        if (group_category_[static_cast<size_t>(leaf_group_[e])] == category) {
          leaves.push_back(static_cast<ExamTypeId>(e));
        }
      }
      break;
    }
  }
  return leaves;
}

}  // namespace dataset
}  // namespace adahealth
