#include "service/client.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "service/protocol.h"

namespace adahealth {
namespace service {

using common::Json;
using common::StatusOr;

StatusOr<AnalysisClient> AnalysisClient::Connect(uint16_t port) {
  ADA_ASSIGN_OR_RETURN(FileDescriptor connection, ConnectLoopback(port));
  AnalysisClient client;
  client.connection_ =
      std::make_unique<FileDescriptor>(std::move(connection));
  client.reader_ = std::make_unique<LineReader>(*client.connection_);
  return client;
}

StatusOr<AnalysisClient> AnalysisClient::Connect(
    uint16_t port, const ConnectOptions& options) {
  common::RetryPolicy policy;
  policy.max_attempts = std::max(1, options.retries + 1);
  policy.initial_backoff_millis = options.initial_backoff_millis;
  policy.max_backoff_millis = options.max_backoff_millis;
  // Only UNAVAILABLE (ECONNREFUSED, nothing bound yet) is worth
  // waiting out at connect time; anything else is a caller bug.
  policy.retryable_codes = {common::StatusCode::kUnavailable};
  StatusOr<AnalysisClient> connected =
      common::UnavailableError("connect never attempted");
  ADA_RETURN_IF_ERROR(common::RetryWithPolicy(
      policy, "service.client.connect", [port, &connected] {
        connected = Connect(port);
        return connected.status();
      }));
  return connected;
}

StatusOr<Json> AnalysisClient::Call(const Json::Object& request) {
  ADA_RETURN_IF_ERROR(SendAll(*connection_, Json(request).Dump() + "\n"));
  ADA_ASSIGN_OR_RETURN(std::string line, reader_->ReadLine());
  return ParseResponse(line);
}

StatusOr<Json> AnalysisClient::Call(const std::string& verb) {
  Json::Object request;
  request["verb"] = verb;
  return Call(request);
}

std::vector<StatusOr<Json>> AnalysisClient::CallPipelined(
    const std::vector<Json::Object>& requests) {
  std::vector<StatusOr<Json>> responses;
  responses.reserve(requests.size());
  std::string batch;
  for (const Json::Object& request : requests) {
    batch += Json(request).Dump() + "\n";
  }
  if (common::Status sent = SendAll(*connection_, batch); !sent.ok()) {
    responses.assign(requests.size(), sent);
    return responses;
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    auto line = reader_->ReadLine();
    if (!line.ok()) {
      // Transport broke mid-batch: every unanswered request gets the
      // same failure.
      for (size_t j = i; j < requests.size(); ++j) {
        responses.push_back(line.status());
      }
      break;
    }
    responses.push_back(ParseResponse(line.value()));
  }
  return responses;
}

}  // namespace service
}  // namespace adahealth
