// JSON-lines persistence of collections: one document per line,
// append-friendly, reloadable after a crash (truncated trailing lines
// are rejected with DATA_LOSS rather than silently dropped).
#ifndef ADAHEALTH_KDB_STORAGE_H_
#define ADAHEALTH_KDB_STORAGE_H_

#include <string>

#include "common/status.h"
#include "kdb/collection.h"

namespace adahealth {
namespace kdb {

/// Serializes every document of `collection` as one JSON line.
std::string SerializeCollection(const Collection& collection);

/// Rebuilds a collection named `name` from JSON-lines `text`.
/// Fails with DATA_LOSS on malformed lines, INVALID_ARGUMENT on
/// documents without a valid "_id".
[[nodiscard]] common::StatusOr<Collection> DeserializeCollection(const std::string& name,
                                                   const std::string& text);

/// Writes the collection to `<directory>/<name>.jsonl`.
[[nodiscard]] common::Status SaveCollection(const Collection& collection,
                              const std::string& directory);

/// Loads `<directory>/<name>.jsonl`.
[[nodiscard]] common::StatusOr<Collection> LoadCollection(const std::string& name,
                                            const std::string& directory);

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_STORAGE_H_
