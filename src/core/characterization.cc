#include "core/characterization.h"

#include "common/string_util.h"

namespace adahealth {
namespace core {

CharacterizationReport Characterize(const dataset::ExamLog& log) {
  CharacterizationReport report;
  report.features = stats::ComputeMetaFeatures(log);
  const stats::MetaFeatures& f = report.features;
  report.text = common::StrFormat(
      "dataset: %lld patients, %lld exam types, %lld records\n"
      "density: %.4f (sparseness %.4f)\n"
      "records/patient: mean %.2f, stddev %.2f\n"
      "exam frequency: normalized entropy %.3f, Gini %.3f\n"
      "coverage: top 20%% of exams -> %.1f%% of records, "
      "top 40%% -> %.1f%%\n"
      "mean patient coverage per exam: %.3f",
      static_cast<long long>(f.num_patients),
      static_cast<long long>(f.num_exam_types),
      static_cast<long long>(f.num_records), f.density, 1.0 - f.density,
      f.mean_records_per_patient, f.stddev_records_per_patient,
      f.exam_frequency_entropy, f.exam_frequency_gini,
      100.0 * f.top20_coverage, 100.0 * f.top40_coverage,
      f.mean_patient_coverage);
  return report;
}

kdb::DocumentId StoreCharacterization(const CharacterizationReport& report,
                                      const std::string& dataset_id,
                                      kdb::Database& db) {
  kdb::Document document;
  document.Set("dataset_id", common::Json(dataset_id));
  document.Set("features", report.features.ToJson());
  document.Set("report", common::Json(report.text));
  return db.GetOrCreate(kdb::Schema::kDescriptors)
      .Insert(std::move(document));
}

}  // namespace core
}  // namespace adahealth
