// The ADA-HEALTH algorithm-optimization component (paper §IV-A):
// "Given a dataset and a clustering algorithm, our technique performs
// several runs of the mining activity with varying parameters (e.g.
// different numbers of clusters)". Each candidate K is scored by
//  (a) the SSE interestingness index, and
//  (b) cluster robustness: a classifier trained to re-predict the
//      cluster labels from the same input features, evaluated with
//      k-fold cross-validation (accuracy, average precision, average
//      recall — the columns of Table I).
// The K with the best overall classification results is selected
// automatically (the paper picks K = 8).
#ifndef ADAHEALTH_CORE_OPTIMIZER_H_
#define ADAHEALTH_CORE_OPTIMIZER_H_

#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "transform/matrix.h"

namespace adahealth {
namespace core {

/// Robustness assessor model (ablation A3).
enum class RobustnessModel {
  kDecisionTree,  // The paper's choice.
  kNaiveBayes,
  kNearestNeighbors,
  kRandomForest,
};

struct OptimizerOptions {
  /// Candidate cluster counts (Table I: 6,7,8,9,10,12,15,20).
  std::vector<int32_t> candidate_ks = {6, 7, 8, 9, 10, 12, 15, 20};
  /// Base K-means configuration; k is overridden per candidate.
  cluster::KMeansOptions kmeans;
  /// Cross-validation folds (paper: 10).
  int32_t cv_folds = 10;
  /// K-means restarts per candidate; the best-SSE run is kept, so the
  /// robustness assessment scores the algorithm's best effort at each
  /// K rather than one local optimum. Every candidate after the first
  /// additionally runs once warm-started from the best solution of
  /// the nearest K evaluated before it (cluster::AdaptCentroids) — a
  /// cheap, fast-converging extra attempt that can only improve the
  /// kept best over the independent k-means++ restarts.
  int32_t restarts = 3;
  RobustnessModel model = RobustnessModel::kDecisionTree;
  /// Worker threads for the cross-validation fan-out (the local
  /// stand-in for the paper's cloud configuration services). 0 =
  /// hardware default. The clustering phase runs in candidate order
  /// (for warm starts and thread-count-independent results) and
  /// parallelizes internally on ThreadPool::Shared() instead.
  size_t num_threads = 0;
  uint64_t seed = 29;
  /// Cross-run warm start (the streaming cohort store's delta jobs):
  /// when non-empty and its column count matches the data, these
  /// centroids — typically the previous generation's selected solution
  /// — are turned into the sweep's initial warm source, so the FIRST
  /// candidate K already gets a warm-started run (adapted via
  /// cluster::AdaptCentroids) on top of its k-means++ restarts, and
  /// every later candidate chains from the best solution so far as
  /// usual. The candidate whose K equals the hint's row count (the
  /// prior selected K) is evaluated first — results still land at
  /// their canonical candidate_ks positions — so callers never need to
  /// reorder candidate_ks, which is fingerprint-significant in the
  /// service layer. A hint only: the independent restarts still run
  /// with their cold seeds, so the kept best-SSE solution can never be
  /// worse than a cold sweep's. Mismatched dimensions are ignored
  /// silently (the cold path). The explicit {} keeps designated-init
  /// call sites clean under -Wmissing-field-initializers.
  transform::Matrix warm_centroids{};
};

/// Per-candidate measurements (one Table I row).
struct CandidateEvaluation {
  int32_t k = 0;
  /// OK when the candidate was evaluated; the failure reason when it
  /// was skipped (e.g. a cluster too small for cv_folds-stratified CV).
  /// Skipped candidates keep their slot with zeroed metrics so
  /// `candidates[i].k == candidate_ks[i]` always holds.
  common::Status status;
  double sse = 0.0;
  double accuracy = 0.0;
  double avg_precision = 0.0;
  double avg_recall = 0.0;
  /// Composite selection score: mean of the three CV metrics.
  double composite = 0.0;
  cluster::Clustering clustering;

  bool skipped() const { return !status.ok(); }
};

struct OptimizerResult {
  std::vector<CandidateEvaluation> candidates;  // In candidate_ks order.
  /// Index of the best *evaluated* candidate (never a skipped one).
  size_t best_index = 0;

  int32_t best_k() const { return candidates[best_index].k; }
  const CandidateEvaluation& best() const {
    return candidates[best_index];
  }
  size_t num_skipped() const {
    size_t skipped = 0;
    for (const CandidateEvaluation& candidate : candidates) {
      if (candidate.skipped()) ++skipped;
    }
    return skipped;
  }
};

/// Sweeps the candidate Ks over `data` (rows = patients in VSM form)
/// and selects the best configuration.
[[nodiscard]] common::StatusOr<OptimizerResult> OptimizeClustering(
    const transform::Matrix& data, const OptimizerOptions& options);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_OPTIMIZER_H_
