// Primary → follower replication of committed analysis results.
//
// Each shard primary owns a LogShipper: every result the scheduler
// commits to its cache (the JSONL-persisted "result_cache" collection)
// is enqueued here and streamed to the shard's follower as `replicate`
// verbs over the loopback NDJSON protocol. The follower inserts each
// entry into its own result cache and persists it through the same
// crash-safe storage path, so on primary death the promoted follower
// answers re-driven jobs from the replicated cache instead of
// re-running the session — the no-double-run half of the failover
// invariant (the router's re-drive is the no-lost half).
//
// Catch-up: whenever the shipper (re)connects — a follower that
// started late, restarted, or dropped the link — it first streams a
// full snapshot of the primary's cache (most recent first, so a
// smaller follower budget keeps the hottest entries) before the live
// tail. Combined with the follower's own salvage-mode restore of its
// JSONL log at boot, a follower is consistent after any crash order.
//
// Delivery is at-least-once; `replicate` application is idempotent
// (cache Insert refreshes an existing fingerprint), so duplicates are
// harmless. The ship loop never blocks a scheduler worker: Enqueue is
// a bounded queue append (oldest entries are dropped — and counted —
// on overflow; the next reconnect snapshot re-covers them).
//
// Failpoints: "service.replication.send" before every wire send.
// Metrics: "service/replication_shipped", "_send_failures",
// "_reconnects", "_dropped" counters; "service/replication_queue"
// gauge.
#ifndef ADAHEALTH_SERVICE_REPLICATION_H_
#define ADAHEALTH_SERVICE_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/sync.h"
#include "service/net_socket.h"
#include "service/result_cache.h"

namespace adahealth {
namespace service {

struct ReplicationOptions {
  /// Loopback port of the follower's NDJSON server.
  uint16_t follower_port = 0;
  /// Pending-entry bound; Enqueue drops the oldest entry beyond it.
  size_t max_queue = 1024;
  /// Backoff between reconnect attempts while the follower is down
  /// grows exponentially from `reconnect_backoff_millis` to
  /// `max_reconnect_backoff_millis`.
  double reconnect_backoff_millis = 25.0;
  double max_reconnect_backoff_millis = 1000.0;
};

/// Point-in-time replication counters (exact, per-shipper).
struct ReplicationStats {
  int64_t shipped = 0;        // Entries acknowledged by the follower.
  int64_t send_failures = 0;  // Failed sends (entry requeued).
  int64_t reconnects = 0;     // Connections established (first included).
  int64_t dropped = 0;        // Queue-overflow drops.
  size_t queue_depth = 0;
  bool connected = false;
};

/// Streams committed cache entries to a follower on a background
/// thread. Thread-safe; Start/Stop idempotent.
class LogShipper {
 public:
  /// `snapshot` is called on every (re)connect to obtain the full
  /// cache contents for catch-up; wire it to ResultCache::Entries().
  using SnapshotProvider = std::function<std::vector<CachedAnalysis>()>;

  LogShipper(ReplicationOptions options, SnapshotProvider snapshot);
  ~LogShipper();  // Stop()s.

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Starts the ship thread (no-op when already running).
  void Start() ADA_EXCLUDES(mutex_);

  /// Stops the ship thread. Entries still queued are abandoned — the
  /// snapshot on the next Start()'s connect re-covers them.
  void Stop() ADA_EXCLUDES(mutex_);

  /// Appends one committed entry to the ship queue (never blocks on
  /// the network). Called from scheduler workers via the
  /// on_result_committed hook.
  void Enqueue(CachedAnalysis entry) ADA_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and the last entry was
  /// acknowledged, or `timeout_millis` elapses; returns whether the
  /// queue drained. Tests and graceful shutdown use this.
  [[nodiscard]] bool WaitUntilDrained(double timeout_millis)
      ADA_EXCLUDES(mutex_);

  [[nodiscard]] ReplicationStats stats() const ADA_EXCLUDES(mutex_);

 private:
  void ShipLoop() ADA_EXCLUDES(mutex_);
  /// One connect + snapshot attempt. Returns the connected socket (an
  /// invalid descriptor on failure).
  [[nodiscard]] FileDescriptor ConnectAndCatchUp() ADA_EXCLUDES(mutex_);
  /// Sends one entry and reads the acknowledgement.
  [[nodiscard]] common::Status ShipEntry(const FileDescriptor& socket,
                                         LineReader& reader,
                                         const CachedAnalysis& entry);

  const ReplicationOptions options_;
  const SnapshotProvider snapshot_;

  mutable common::Mutex mutex_;
  common::CondVar wake_;     // New entries or stop.
  common::CondVar drained_;  // Queue emptied (WaitUntilDrained).
  std::deque<CachedAnalysis> queue_ ADA_GUARDED_BY(mutex_);
  bool running_ ADA_GUARDED_BY(mutex_) = false;
  bool stopping_ ADA_GUARDED_BY(mutex_) = false;
  /// True while an entry is popped but not yet acknowledged, so
  /// WaitUntilDrained cannot report an empty queue early.
  bool in_flight_ ADA_GUARDED_BY(mutex_) = false;
  ReplicationStats stats_ ADA_GUARDED_BY(mutex_);
  std::thread thread_ ADA_GUARDED_BY(mutex_);
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_REPLICATION_H_
