// Reproduces Table I of the paper ("OPTIMIZATION METRICS"):
//
//   K   SSE      Accuracy  AVG Precision  AVG Recall
//   6   3098.32  87.79     90.82          77.3
//   ...
//   20  1534     82.11     52.59          33.43
//
// Protocol (paper §IV-B): use 85% of the raw data (the vertical subset
// covering ~85% of records, i.e. the top 40% of exam types), run
// K-means for each candidate K, and for each cluster set train a
// decision tree to re-predict the cluster labels, evaluated with
// 10-fold cross-validation. ADA-HEALTH automatically selects the K
// with the best overall classification results (paper: K = 8).
//
// We do not expect to match the absolute numbers (the cohort is
// synthetic); the *shape* must hold: SSE decreases monotonically in K,
// the classification metrics peak near the latent profile count (8)
// and collapse for heavy over-segmentation (K = 15, 20).
#include <cstdio>

#include "cluster/elbow.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/optimizer.h"
#include "dataset/synthetic_cohort.h"
#include "transform/feature_select.h"
#include "transform/vsm.h"

namespace {

using namespace adahealth;

int Run() {
  common::WallTimer timer;
  std::printf("=== Table I: optimization metrics (paper-scale synthetic "
              "cohort) ===\n");

  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::PaperScaleConfig())
          .Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed: %s\n",
                cohort.status().ToString().c_str());
    return 1;
  }
  std::printf("cohort: %zu patients, %zu exam types, %zu records\n",
              cohort->log.num_patients(), cohort->log.num_exam_types(),
              cohort->log.num_records());

  // Paper protocol: analysis on the subset covering ~85% of the raw
  // records = the top 40% of exam types by frequency.
  std::vector<bool> mask =
      transform::TopFractionExamsMask(cohort->log, 0.40);
  double coverage = transform::RecordCoverage(cohort->log, mask);
  dataset::ExamLog subset = cohort->log.FilterExamTypes(mask);
  std::printf("subset: top 40%% of exam types -> %.1f%% of records "
              "(%zu exam types)\n\n",
              100.0 * coverage, subset.num_exam_types());

  // TF-IDF + L2 is the representation the ADA-HEALTH transformation
  // selector picks for this cohort (see bench_architecture_pipeline):
  // it exposes the clinical-profile structure that raw counts bury
  // under routine-exam volume.
  transform::VsmOptions vsm_options{transform::VsmWeighting::kTfIdf,
                                    transform::VsmNormalization::kL2};
  transform::Matrix vsm = transform::BuildVsm(subset, vsm_options);

  core::OptimizerOptions options;
  options.candidate_ks = {6, 7, 8, 9, 10, 12, 15, 20};
  options.cv_folds = 10;
  options.model = core::RobustnessModel::kDecisionTree;
  options.seed = 20160516;
  auto result = core::OptimizeClustering(vsm, options);
  if (!result.ok()) {
    std::printf("optimizer failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %-12s %-10s %-14s %-10s\n", "K", "SSE", "Accuracy",
              "AVG Precision", "AVG Recall");
  for (const core::CandidateEvaluation& candidate : result->candidates) {
    if (candidate.skipped()) {
      std::printf("%-4d skipped: %s\n", candidate.k,
                  candidate.status.message().c_str());
      continue;
    }
    std::printf("%-4d %-12.2f %-10.2f %-14.2f %-10.2f\n", candidate.k,
                candidate.sse, 100.0 * candidate.accuracy,
                100.0 * candidate.avg_precision,
                100.0 * candidate.avg_recall);
  }
  // The paper's SSE-only analysis: "good values for K are in the range
  // from 8 to 20" — SSE admits a whole range, which is why the
  // classifier-based assessment is needed.
  std::vector<cluster::SsePoint> sweep;
  for (const auto& candidate : result->candidates) {
    if (candidate.skipped()) continue;
    sweep.push_back({candidate.k, candidate.sse});
  }
  auto elbow = cluster::AnalyzeElbow(sweep);
  if (elbow.ok()) {
    std::printf("\nSSE-only analysis: knee at K = %d; improvements "
                "flatten from K = %d on (SSE alone admits a range, as "
                "in the paper)\n",
                elbow->knee_k, elbow->admissible_from_k);
  }
  std::printf("\nADA-HEALTH automatically selects K = %d "
              "(best overall classification results)\n",
              result->best_k());
  std::printf("paper reference: SSE monotone decreasing; metrics peak at "
              "K = 8; paper selects K = 8\n");

  // Machine-readable runtime report: every stage recorded into the
  // default registry during the sweep.
  const common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  std::printf("\n--- metrics report (JSON) ---\n%s\n",
              metrics.ToJson().Pretty().c_str());
  const std::string metrics_path = "bench_table1_metrics.json";
  if (metrics.WriteJsonFile(metrics_path).ok()) {
    std::printf("[table1] metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("[table1] total time: %.1f s\n\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
