// Lightweight error-handling vocabulary for ADA-HEALTH.
//
// The project follows the Google C++ style guide and does not use
// exceptions: fallible operations return `Status` (or `StatusOr<T>` when
// they also produce a value). Programmer errors are handled with the
// ADA_CHECK macros in common/check.h instead.
//
// Example:
//   StatusOr<ExamLog> log = ExamLog::FromCsv(path);
//   if (!log.ok()) return log.status();
//   Use(log.value());
#ifndef ADAHEALTH_COMMON_STATUS_H_
#define ADAHEALTH_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace adahealth {
namespace common {

/// Canonical error space, modelled after absl::StatusCode.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
  kUnavailable = 9,
  kDeadlineExceeded = 10,
  /// A bounded resource (admission queue, byte budget, worker slots)
  /// is full; the caller should back off and retry later. Used by the
  /// service layer for load shedding.
  kResourceExhausted = 11,
};

/// Returns the canonical name of `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: resolves a canonical name back to its
/// code. INVALID_ARGUMENT for unknown names. Shared by the failpoint
/// spec grammar and the service NDJSON wire protocol.
template <typename T>
class [[nodiscard]] StatusOr;
[[nodiscard]] StatusOr<StatusCode> StatusCodeFromName(std::string_view name);

/// Value-type result of a fallible operation: either OK or an error code
/// with a human-readable message.
///
/// The class itself is [[nodiscard]]: every function returning a Status
/// by value warns if a call site ignores the result. Call sites that
/// intentionally drop a Status must say why and cast through
/// `static_cast<void>` (see e.g. bench code that best-effort-writes
/// metrics files).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failures.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories, mirroring absl.
[[nodiscard]] Status OkStatus();
[[nodiscard]] Status InvalidArgumentError(std::string message);
[[nodiscard]] Status NotFoundError(std::string message);
[[nodiscard]] Status AlreadyExistsError(std::string message);
[[nodiscard]] Status FailedPreconditionError(std::string message);
[[nodiscard]] Status OutOfRangeError(std::string message);
[[nodiscard]] Status UnimplementedError(std::string message);
[[nodiscard]] Status InternalError(std::string message);
[[nodiscard]] Status DataLossError(std::string message);
[[nodiscard]] Status UnavailableError(std::string message);
[[nodiscard]] Status DeadlineExceededError(std::string message);
[[nodiscard]] Status ResourceExhaustedError(std::string message);

/// Union of a `Status` and a `T`: holds a value exactly when ok().
///
/// Accessing value() on a non-OK StatusOr aborts the process (it is a
/// programmer error, equivalent to dereferencing a disengaged optional).
///
/// Like Status, the class is [[nodiscard]] so that silently dropping a
/// fallible result is a compile-time warning (an error under
/// -DADA_WERROR=ON).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, like absl::StatusOr).
  StatusOr(T value) : status_(OkStatus()), value_(std::move(value)) {}
  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBecauseStatusOrNotOk(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieBecauseStatusOrNotOk(status_);
}

}  // namespace common
}  // namespace adahealth

/// Evaluates `expr` (a Status expression) and returns it from the calling
/// function if it is not OK.
#define ADA_RETURN_IF_ERROR(expr)                          \
  do {                                                     \
    ::adahealth::common::Status ada_status_tmp_ = (expr);  \
    if (!ada_status_tmp_.ok()) return ada_status_tmp_;     \
  } while (false)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the
/// status, otherwise moves the value into `lhs`.
#define ADA_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  ADA_ASSIGN_OR_RETURN_IMPL_(                            \
      ADA_STATUS_CONCAT_(ada_statusor_, __LINE__), lhs, rexpr)

#define ADA_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) return statusor.status();          \
  lhs = std::move(statusor).value()

#define ADA_STATUS_CONCAT_(a, b) ADA_STATUS_CONCAT_IMPL_(a, b)
#define ADA_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // ADAHEALTH_COMMON_STATUS_H_
