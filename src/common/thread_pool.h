// Fixed-size worker pool with a ParallelFor convenience wrapper.
//
// The ADA-HEALTH optimizer evaluates many candidate configurations
// (e.g. K values) concurrently; this pool is the local stand-in for the
// paper's "online cloud-based services for automatic configuration".
#ifndef ADAHEALTH_COMMON_THREAD_POOL_H_
#define ADAHEALTH_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace adahealth {
namespace common {

/// A fixed pool of worker threads executing queued tasks FIFO.
/// Thread-safe. Destruction drains the queue: every task scheduled
/// before the destructor runs is executed before the workers join.
///
/// Exception safety: the project itself is exception-free (fallible
/// operations return Status), but third-party code run on the pool may
/// still throw. An exception escaping a task is caught by the worker,
/// counted in failed_tasks(), and its first message retained
/// (first_failure_message()); the worker thread survives and Wait()
/// does not deadlock.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  /// Process-wide pool shared by every parallel subsystem (optimizer
  /// candidate sweeps, k-means row-level parallelism, ...). Sized to
  /// the hardware concurrency and constructed on first use; callers
  /// must never Shutdown() it. Sharing one pool keeps the process at
  /// one worker per core instead of one pool per sweep.
  static ThreadPool& Shared();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Scheduling after shutdown has begun
  /// is a programmer error (ADA_CHECK); use TrySchedule when the pool's
  /// lifetime is not under the caller's control.
  void Schedule(std::function<void()> task) ADA_EXCLUDES(mutex_);

  /// Like Schedule, but returns false (dropping `task`) instead of
  /// aborting when the pool is already shutting down. Safe to call
  /// concurrently with Shutdown.
  [[nodiscard]] bool TrySchedule(std::function<void()> task)
      ADA_EXCLUDES(mutex_);

  /// Begins shutdown, drains the queue, and joins the workers: every
  /// task accepted before shutdown began is executed before this
  /// returns. Idempotent from the owning thread (the destructor calls
  /// it); concurrent TrySchedule calls observe the shutdown and return
  /// false instead of enqueuing.
  void Shutdown() ADA_EXCLUDES(mutex_);

  /// Blocks until every scheduled task has completed.
  void Wait() ADA_EXCLUDES(mutex_);

  /// threads_ is immutable after construction, so this needs no lock.
  size_t num_threads() const { return threads_.size(); }

  /// Number of tasks so far whose execution ended in an exception.
  [[nodiscard]] size_t failed_tasks() const ADA_EXCLUDES(mutex_);

  /// what() of the first failed task ("" while failed_tasks() == 0;
  /// "unknown exception" for non-std::exception throws).
  [[nodiscard]] std::string first_failure_message() const
      ADA_EXCLUDES(mutex_);

 private:
  void WorkerLoop() ADA_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ ADA_GUARDED_BY(mutex_);
  size_t active_ ADA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ ADA_GUARDED_BY(mutex_) = false;
  size_t failed_tasks_ ADA_GUARDED_BY(mutex_) = 0;
  std::string first_failure_message_ ADA_GUARDED_BY(mutex_);
  /// Started in the constructor, joined by Shutdown; the vector itself
  /// is never resized after construction.
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [begin, end) across `pool`, blocking until all
/// iterations complete. Iterations are distributed in contiguous chunks
/// claimed from a shared counter; the calling thread participates in
/// chunk execution, so ParallelFor is safe to nest — a body running on
/// a pool worker may itself call ParallelFor on the same pool without
/// deadlock (in the worst case the inner call runs entirely on the
/// calling worker). `max_chunk` caps the chunk size (0 = automatic).
/// A body exception is rethrown to the caller after every iteration
/// has settled, no matter which thread ran the throwing chunk.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t max_chunk = 0);

/// Like ParallelFor but hands each task a contiguous [chunk_begin,
/// chunk_end) range instead of a single index, avoiding per-index
/// std::function overhead in tight loops. Same nesting guarantees.
/// Returns the number of chunks executed.
size_t ParallelForChunks(
    ThreadPool& pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t)>& chunk_body,
    size_t max_chunk = 0);

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_THREAD_POOL_H_
