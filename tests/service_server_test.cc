// End-to-end coverage of the NDJSON protocol server: the wire grammar
// (ParseRequest/ParseResponse/BuildJobRequest), verb dispatch, and a
// full submit/status/result/cancel/stats conversation over a real
// loopback socket via AnalysisClient.
#include <memory>
#include <string>

#include <gtest/gtest.h>
#include "common/check.h"
#include "common/json.h"
#include "common/status.h"
#include "service/client.h"
#include "service/net_socket.h"
#include "service/protocol.h"
#include "service/server.h"

namespace adahealth {
namespace {

using common::Json;
using common::StatusCode;

// ---------------------------------------------------------------------
// Wire grammar.

TEST(ProtocolTest, ParseRequestExtractsVerb) {
  auto request = service::ParseRequest(R"({"verb":"ping","x":1})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->verb, "ping");
  EXPECT_EQ(request->body.Find("x")->AsInt(), 1);
}

TEST(ProtocolTest, ParseRequestRejectsMalformedInput) {
  EXPECT_EQ(service::ParseRequest("{not json").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::ParseRequest("[1,2]").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::ParseRequest(R"({"x":1})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::ParseRequest(R"({"verb":""})").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponsesRoundTripThroughParseResponse) {
  Json::Object fields;
  fields["job_id"] = static_cast<int64_t>(7);
  std::string ok_line = service::OkResponse(std::move(fields));
  EXPECT_EQ(ok_line.back(), '\n');
  auto ok = service::ParseResponse(ok_line);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->Find("job_id")->AsInt(), 7);

  std::string error_line = service::ErrorResponse(
      common::ResourceExhaustedError("queue full"));
  auto error = service::ParseResponse(error_line);
  EXPECT_EQ(error.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(error.status().message(), "queue full");
}

TEST(ProtocolTest, BuildJobRequestRequiresExactlyOneDataset) {
  auto neither = service::BuildJobRequest(Json(Json::Object{}));
  EXPECT_EQ(neither.status().code(), StatusCode::kInvalidArgument);

  Json::Object both;
  both["csv"] = "patient_id,exam_type,day\n";
  both["synthetic"] = Json(Json::Object{});
  auto rejected = service::BuildJobRequest(Json(std::move(both)));
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, BuildJobRequestFromCsvAndKnobs) {
  Json::Object body;
  body["csv"] =
      "patient_id,exam_type,day\n0,glucose,1\n0,hba1c,30\n1,glucose,2\n";
  body["dataset_id"] = "csv-cohort";
  body["priority"] = static_cast<int64_t>(3);
  body["deadline_millis"] = 250.0;
  Json::Object options;
  options["cv_folds"] = static_cast<int64_t>(4);
  options["candidate_ks"] = Json(Json::Array{Json(2), Json(3)});
  body["options"] = Json(std::move(options));
  auto request = service::BuildJobRequest(Json(std::move(body)));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->log.num_patients(), 2u);
  EXPECT_EQ(request->log.num_records(), 3u);
  EXPECT_EQ(request->options.dataset_id, "csv-cohort");
  EXPECT_EQ(request->priority, 3);
  EXPECT_DOUBLE_EQ(request->deadline_millis, 250.0);
  EXPECT_EQ(request->options.optimizer.cv_folds, 4);
  EXPECT_EQ(request->options.optimizer.candidate_ks,
            (std::vector<int32_t>{2, 3}));
  EXPECT_FALSE(request->taxonomy.has_value());
}

TEST(ProtocolTest, BuildJobRequestSyntheticCarriesTaxonomy) {
  Json::Object synthetic;
  synthetic["patients"] = static_cast<int64_t>(80);
  synthetic["exam_types"] = static_cast<int64_t>(20);
  synthetic["profiles"] = static_cast<int64_t>(3);
  synthetic["seed"] = static_cast<int64_t>(5);
  Json::Object body;
  body["synthetic"] = Json(std::move(synthetic));
  auto request = service::BuildJobRequest(Json(std::move(body)));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->log.num_patients(), 80u);
  EXPECT_TRUE(request->taxonomy.has_value());
}

// ---------------------------------------------------------------------
// Socket primitives.

TEST(NetSocketTest, ConnectLoopbackEstablishesAndCarriesTraffic) {
  auto listener = service::ServerSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  // The connect completes against the listen backlog, so no accepting
  // thread is needed before it returns.
  auto client = service::ConnectLoopback(listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->valid());
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());

  // Full duplex: a line each way.
  ASSERT_TRUE(service::SendAll(client.value(), "hello server\n").ok());
  service::LineReader server_reader(accepted.value());
  auto inbound = server_reader.ReadLine();
  ASSERT_TRUE(inbound.ok());
  EXPECT_EQ(inbound.value(), "hello server");
  ASSERT_TRUE(service::SendAll(accepted.value(), "hello client\n").ok());
  service::LineReader client_reader(client.value());
  auto outbound = client_reader.ReadLine();
  ASSERT_TRUE(outbound.ok());
  EXPECT_EQ(outbound.value(), "hello client");

  // An established connection passes FinishConnect's SO_ERROR check —
  // the path an EINTR-interrupted connect() lands on.
  EXPECT_TRUE(service::FinishConnect(client.value(), 1000).ok());
}

TEST(NetSocketTest, ConnectLoopbackReportsUnavailableWhenNothingListens) {
  uint16_t dead_port = 0;
  {
    auto listener = service::ServerSocket::Listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  // The listener is gone; the kernel refuses the connect.
  auto client = service::ConnectLoopback(dead_port);
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(NetSocketTest, LineReaderCapsNewlinelessInput) {
  auto listener = service::ServerSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = service::ConnectLoopback(listener->port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());

  // 8 KiB without a newline against a 1 KiB budget: the reader must
  // fail instead of buffering forever.
  std::string flood(8192, 'y');
  ASSERT_TRUE(service::SendAll(client.value(), flood).ok());
  service::LineReader reader(accepted.value(), /*max_line_bytes=*/1024);
  EXPECT_EQ(reader.ReadLine().status().code(),
            StatusCode::kResourceExhausted);

  // A line under the budget on a fresh reader still parses.
  ASSERT_TRUE(service::SendAll(accepted.value(), "ok\n").ok());
  service::LineReader small(client.value(), /*max_line_bytes=*/1024);
  auto line = small.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "ok");
}

// ---------------------------------------------------------------------
// Server end-to-end over loopback.

class ServerTest : public testing::Test {
 protected:
  void SetUp() override {
    service::ServerOptions options;
    options.scheduler.max_workers = 2;
    server_ = std::make_unique<service::AnalysisServer>(std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  /// A small fast synthetic submit body.
  static Json::Object SubmitBody(int64_t seed,
                                 const std::string& dataset_id) {
    Json::Object synthetic;
    synthetic["patients"] = static_cast<int64_t>(100);
    synthetic["exam_types"] = static_cast<int64_t>(20);
    synthetic["profiles"] = static_cast<int64_t>(3);
    synthetic["seed"] = seed;
    Json::Object options;
    options["sample_fraction"] = 0.4;
    options["candidate_ks"] = Json(Json::Array{Json(3), Json(4)});
    options["cv_folds"] = static_cast<int64_t>(4);
    options["restarts"] = static_cast<int64_t>(1);
    Json::Object body;
    body["verb"] = "submit";
    body["synthetic"] = Json(std::move(synthetic));
    body["dataset_id"] = dataset_id;
    body["options"] = Json(std::move(options));
    return body;
  }

  service::AnalysisClient Client() {
    auto client = service::AnalysisClient::Connect(server_->port());
    ADA_CHECK(client.ok());
    return std::move(client).value();
  }

  std::unique_ptr<service::AnalysisServer> server_;
};

TEST_F(ServerTest, PingAnswers) {
  auto client = Client();
  auto response = client.Call("ping");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Find("service")->AsString(), "ada-health");
}

TEST_F(ServerTest, SubmitResultFlowAndCacheHitOnRepeat) {
  auto client = Client();
  auto submitted = client.Call(SubmitBody(7, "e2e"));
  ASSERT_TRUE(submitted.ok());
  int64_t job_id = submitted->Find("job_id")->AsInt();
  // A worker may pick the job up before the submit snapshot is taken.
  std::string submit_state = submitted->Find("state")->AsString();
  EXPECT_TRUE(submit_state == "queued" || submit_state == "running" ||
              submit_state == "done")
      << submit_state;

  Json::Object result_request;
  result_request["verb"] = "result";
  result_request["job_id"] = job_id;
  result_request["wait_millis"] = 60000.0;
  auto result = client.Call(result_request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("state")->AsString(), "done");
  EXPECT_FALSE(result->Find("cache_hit")->AsBool());
  EXPECT_FALSE(result->Find("report")->AsString().empty());

  // The identical submission is answered from the cache.
  auto repeat = client.Call(SubmitBody(7, "e2e"));
  ASSERT_TRUE(repeat.ok());
  result_request["job_id"] = repeat->Find("job_id")->AsInt();
  auto repeat_result = client.Call(result_request);
  ASSERT_TRUE(repeat_result.ok());
  EXPECT_EQ(repeat_result->Find("state")->AsString(), "done");
  EXPECT_TRUE(repeat_result->Find("cache_hit")->AsBool());
  EXPECT_EQ(repeat_result->Find("report")->AsString(),
            result->Find("report")->AsString());

  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("sessions_executed")->AsInt(), 1);
  EXPECT_EQ(stats->Find("cache")->Find("hits")->AsInt(), 1);
}

TEST_F(ServerTest, StatusOfUnknownJobIsNotFound) {
  auto client = Client();
  Json::Object request;
  request["verb"] = "status";
  request["job_id"] = static_cast<int64_t>(4242);
  auto response = client.Call(request);
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, MalformedLineYieldsInvalidArgumentResponse) {
  // Below AnalysisClient: raw socket, garbage line.
  auto connection = service::ConnectLoopback(server_->port());
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(service::SendAll(connection.value(), "this is not json\n").ok());
  service::LineReader reader(connection.value());
  auto line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  auto parsed = service::ParseResponse(line.value());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, UnknownVerbIsRejected) {
  auto client = Client();
  auto response = client.Call("frobnicate");
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, InvalidSubmitSurfacesError) {
  auto client = Client();
  Json::Object body;
  body["verb"] = "submit";  // Neither csv nor synthetic.
  auto response = client.Call(body);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, CancelQueuedJobOverTheWire) {
  // A dedicated paused server keeps the job queued deterministically
  // while the cancel request races nothing.
  service::ServerOptions options;
  options.scheduler.max_workers = 1;
  options.scheduler.start_paused = true;
  service::AnalysisServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());
  auto client = service::AnalysisClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto submitted = client.value().Call(SubmitBody(9, "cancel-me"));
  ASSERT_TRUE(submitted.ok());
  Json::Object request;
  request["verb"] = "cancel";
  request["job_id"] = submitted->Find("job_id")->AsInt();
  auto cancelled = client.value().Call(request);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->Find("state")->AsString(), "cancelled");
  server.scheduler().Resume();
  server.Stop();
}

TEST_F(ServerTest, HealthVerbReportsLiveness) {
  auto client = Client();
  auto response = client.Call("health");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Find("service")->AsString(), "ada-health");
  EXPECT_EQ(response->Find("role")->AsString(), "primary");
  EXPECT_GE(response->Find("uptime_seconds")->AsDouble(), 0.0);
  EXPECT_EQ(response->Find("queue_depth")->AsInt(), 0);
  EXPECT_EQ(response->Find("max_workers")->AsInt(), 2);
  EXPECT_EQ(response->Find("cache_entries")->AsInt(), 0);
  EXPECT_GE(response->Find("open_connections")->AsInt(), 1);
  // No --replicate-to: the replication block is absent, not empty.
  EXPECT_EQ(response->Find("replication"), nullptr);
}

TEST_F(ServerTest, FollowerRejectsSubmitsUntilPromoted) {
  service::ServerOptions options;
  options.role = service::ServerRole::kFollower;
  options.scheduler.max_workers = 1;
  service::AnalysisServer follower(std::move(options));
  ASSERT_TRUE(follower.Start().ok());
  auto client = service::AnalysisClient::Connect(follower.port());
  ASSERT_TRUE(client.ok());

  // UNAVAILABLE (retryable) so clients racing a failover back off and
  // land on the promoted shard.
  auto rejected = client->Call(SubmitBody(31, "to-follower"));
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  auto promoted = client->Call("promote");
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted->Find("role")->AsString(), "primary");
  EXPECT_TRUE(promoted->Find("was_follower")->AsBool());

  // Promotion is idempotent — the router retries it during failover.
  auto again = client->Call("promote");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->Find("was_follower")->AsBool());

  auto accepted = client->Call(SubmitBody(31, "to-follower"));
  ASSERT_TRUE(accepted.ok());
  Json::Object request;
  request["verb"] = "result";
  request["job_id"] = accepted->Find("job_id")->AsInt();
  request["wait_millis"] = 60000.0;
  auto result = client->Call(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("state")->AsString(), "done");
  follower.Stop();
}

TEST_F(ServerTest, ReplicateVerbInsertsIdempotently) {
  auto client = Client();
  Json::Object entry;
  entry["fingerprint"] = "replicated-fp";
  entry["dataset_id"] = "repl";
  entry["summary"] = "replicated summary";
  entry["report"] = "replicated report";
  entry["knowledge_items"] = static_cast<int64_t>(4);
  Json::Object request;
  request["verb"] = "replicate";
  request["entry"] = Json(std::move(entry));

  auto applied = client.Call(request);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied->Find("applied")->AsBool());
  EXPECT_EQ(applied->Find("cache_entries")->AsInt(), 1);

  // At-least-once delivery: a duplicate refreshes, never duplicates.
  auto duplicate = client.Call(request);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->Find("cache_entries")->AsInt(), 1);

  // A replicate without a parseable entry is rejected.
  Json::Object bad;
  bad["verb"] = "replicate";
  EXPECT_EQ(client.Call(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ShutdownVerbStopsTheServer) {
  auto client = Client();
  auto response = client.Call("shutdown");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->Find("stopping")->AsBool());
  server_->Wait();
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace adahealth
