#include "service/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/report.h"
#include "kdb/database.h"
#include "service/fingerprint.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

std::chrono::steady_clock::duration MillisToDuration(double millis) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(millis));
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kExpired:
      return "expired";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kExpired || state == JobState::kCancelled;
}

JobSnapshot Scheduler::Job::Snapshot() const {
  JobSnapshot snapshot;
  snapshot.id = id;
  snapshot.state = state;
  snapshot.status = status;
  snapshot.dataset_id = request.options.dataset_id;
  snapshot.fingerprint = fingerprint;
  snapshot.priority = request.priority;
  snapshot.cache_hit = cache_hit;
  snapshot.wait_seconds = wait_seconds;
  snapshot.run_seconds = run_seconds;
  snapshot.summary = summary;
  snapshot.report = report;
  snapshot.knowledge_items = knowledge_items;
  return snapshot;
}

Scheduler::Scheduler(SchedulerOptions options)
    : options_([&options] {
        options.max_workers = std::max<size_t>(1, options.max_workers);
        options.max_queue_depth = std::max<size_t>(1, options.max_queue_depth);
        options.cache_persist_threshold =
            std::max<size_t>(1, options.cache_persist_threshold);
        return options;
      }()),
      cache_(options_.cache_bytes),
      paused_(options_.start_paused) {
  if (!options_.cache_directory.empty()) {
    common::Status restored = cache_.Restore(options_.cache_directory);
    if (restored.ok()) {
      ADA_LOG(kInfo) << "service: restored " << cache_.entries()
                     << " cached analyses from " << options_.cache_directory;
    } else {
      // Normal on first boot (no persisted cache yet); any other
      // failure degrades to a cold cache, never a failed start.
      ADA_LOG(kInfo) << "service: starting with a cold result cache ("
                     << restored.ToString() << ")";
    }
  }
}

Scheduler::~Scheduler() {
  std::vector<Notification> notifications;
  {
    common::MutexLock lock(&mutex_);
    draining_ = true;
    std::vector<JobId> backlog;
    backlog.reserve(pending_.size());
    for (const PendingKey& key : pending_) backlog.push_back(key.second);
    pending_.clear();
    for (JobId id : backlog) {
      FinishJob(*jobs_.at(id), JobState::kCancelled,
                common::Status(common::StatusCode::kOk, "scheduler shutdown"),
                &notifications);
    }
    workers_idle_.Wait(mutex_, [this]() ADA_REQUIRES(mutex_) {
      return active_workers_ == 0;
    });
  }
  // Shutdown cancellations notify after every worker has retired and
  // the lock is gone; subscribers may still query the scheduler.
  FireNotifications(notifications);
  // Final flush: pays off whatever dirty debt the persist threshold
  // left batched up.
  if (!options_.cache_directory.empty() && cache_.dirty_entries() > 0) {
    common::Status persisted = cache_.Persist(options_.cache_directory);
    if (!persisted.ok()) {
      ADA_LOG(kWarning) << "service: final cache persist failed: "
                        << persisted.ToString();
    }
  }
}

StatusOr<JobId> Scheduler::Submit(JobRequest request) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::Status admission = ADA_FAILPOINT("service.admission");
  if (!admission.ok()) {
    common::MutexLock lock(&mutex_);
    ++stats_.shed;
    metrics.GetCounter("service/jobs_shed").Increment();
    return admission;
  }
  if (request.log.num_patients() == 0 || request.log.num_records() == 0) {
    return common::InvalidArgumentError(
        "job dataset has no patients or records");
  }
  // Fingerprinting is O(records) and lock-free; done before admission
  // so the snapshot carries the cache key from the moment of submit.
  std::string fingerprint = DatasetFingerprint(request.log, request.options);
  if (!request.cohort.empty()) {
    // Versioned fingerprint: the cohort's generation is part of the
    // cache key, so each ingest-advanced snapshot gets its own entry
    // and the result cache can supersede older generations.
    fingerprint = common::StrFormat(
        "%s@%lld/%s", request.cohort.c_str(),
        static_cast<long long>(request.cohort_generation),
        fingerprint.c_str());
  }

  std::vector<Notification> notifications;
  common::MutexLock lock(&mutex_);
  if (draining_) {
    return common::FailedPreconditionError("scheduler is shutting down");
  }
  // A newer generation makes queued jobs over older snapshots of the
  // same cohort pointless: cancel them (freeing queue room) so a
  // waiter on a stale job resolves with a stale-generation status
  // instead of burning a worker on an answer nobody should read.
  std::vector<JobId> superseded;
  if (!request.cohort.empty()) {
    for (const PendingKey& key : pending_) {
      const Job& queued = *jobs_.at(key.second);
      if (queued.request.cohort == request.cohort &&
          queued.request.cohort_generation < request.cohort_generation) {
        superseded.push_back(key.second);
      }
    }
  }
  // Admission runs BEFORE the supersede-cancels (but accounts for the
  // slots they would free): a shed submit must leave the queue exactly
  // as it found it. Cancelling first would tell the stale jobs'
  // waiters they were "superseded by generation N" when the
  // generation-N job was never admitted, leaving the cohort with no
  // queued job at all.
  if (pending_.size() - superseded.size() >= options_.max_queue_depth) {
    ++stats_.shed;
    metrics.GetCounter("service/jobs_shed").Increment();
    return common::ResourceExhaustedError(common::StrFormat(
        "admission queue is full (%zu queued, bound %zu)", pending_.size(),
        options_.max_queue_depth));
  }
  for (JobId stale : superseded) {
    Job& queued = *jobs_.at(stale);
    pending_.erase(
        PendingKey(-static_cast<int64_t>(queued.request.priority), stale));
    ++stats_.superseded;
    metrics.GetCounter("service/jobs_superseded").Increment();
    FinishJob(queued, JobState::kCancelled,
              common::FailedPreconditionError(common::StrFormat(
                  "superseded by cohort '%s' generation %lld",
                  request.cohort.c_str(),
                  static_cast<long long>(request.cohort_generation))),
              &notifications);
  }

  JobId id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->fingerprint = std::move(fingerprint);
  job->enqueue_time = std::chrono::steady_clock::now();
  job->has_deadline = request.deadline_millis > 0.0;
  job->deadline = job->has_deadline
                      ? job->enqueue_time +
                            MillisToDuration(request.deadline_millis)
                      : std::chrono::steady_clock::time_point::max();
  job->request = std::move(request);
  pending_.emplace(-static_cast<int64_t>(job->request.priority), id);
  jobs_.emplace(id, std::move(job));
  ++stats_.submitted;
  metrics.GetCounter("service/jobs_submitted").Increment();
  UpdateGaugesLocked();
  const bool drain_inline = SpawnWorkersLocked();
  lock.Unlock();
  FireNotifications(notifications);
  if (drain_inline) DrainLoop();
  return id;
}

StatusOr<JobSnapshot> Scheduler::Status(JobId id) const {
  common::MutexLock lock(&mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return common::NotFoundError(
        common::StrFormat("no job with id %lld", static_cast<long long>(id)));
  }
  return it->second->Snapshot();
}

StatusOr<JobSnapshot> Scheduler::AwaitResult(JobId id, double timeout_millis) {
  common::MutexLock lock(&mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return common::NotFoundError(
        common::StrFormat("no job with id %lld", static_cast<long long>(id)));
  }
  Job* job = it->second.get();
  auto terminal = [job]() ADA_REQUIRES(mutex_) {
    return IsTerminal(job->state);
  };
  if (timeout_millis > 0.0) {
    if (!state_changed_.WaitFor(mutex_, timeout_millis, terminal)) {
      return common::DeadlineExceededError(common::StrFormat(
          "job %lld still %s after %.0f ms", static_cast<long long>(id),
          JobStateName(job->state), timeout_millis));
    }
  } else {
    state_changed_.Wait(mutex_, terminal);
  }
  return job->Snapshot();
}

common::Status Scheduler::Cancel(JobId id) {
  std::vector<Notification> notifications;
  {
    common::MutexLock lock(&mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return common::NotFoundError(common::StrFormat(
          "no job with id %lld", static_cast<long long>(id)));
    }
    Job& job = *it->second;
    if (job.state != JobState::kQueued) {
      return common::FailedPreconditionError(common::StrFormat(
          "job %lld is %s; only queued jobs can be cancelled",
          static_cast<long long>(id), JobStateName(job.state)));
    }
    pending_.erase(
        PendingKey(-static_cast<int64_t>(job.request.priority), job.id));
    FinishJob(job, JobState::kCancelled,
              common::Status(common::StatusCode::kOk, "cancelled by client"),
              &notifications);
  }
  FireNotifications(notifications);
  return common::OkStatus();
}

StatusOr<Scheduler::SubscriptionId> Scheduler::Subscribe(
    JobId id, CompletionCallback callback) {
  JobSnapshot already_terminal;
  {
    common::MutexLock lock(&mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return common::NotFoundError(common::StrFormat(
          "no job with id %lld", static_cast<long long>(id)));
    }
    if (!IsTerminal(it->second->state)) {
      SubscriptionId subscription_id = next_subscription_id_++;
      subscriptions_.emplace(subscription_id,
                             Subscription{id, std::move(callback)});
      subscriptions_by_job_.emplace(id, subscription_id);
      return subscription_id;
    }
    already_terminal = it->second->Snapshot();
  }
  // Terminal before we subscribed: fire inline (without the lock, so
  // the callback may inspect the scheduler) and return the sentinel.
  callback(already_terminal);
  return SubscriptionId{0};
}

bool Scheduler::Unsubscribe(SubscriptionId id) {
  common::MutexLock lock(&mutex_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return false;
  for (auto range = subscriptions_by_job_.equal_range(it->second.job);
       range.first != range.second; ++range.first) {
    if (range.first->second == id) {
      subscriptions_by_job_.erase(range.first);
      break;
    }
  }
  subscriptions_.erase(it);
  return true;
}

void Scheduler::Pause() {
  common::MutexLock lock(&mutex_);
  paused_ = true;
}

void Scheduler::Resume() {
  common::MutexLock lock(&mutex_);
  paused_ = false;
  if (SpawnWorkersLocked()) {
    lock.Unlock();
    DrainLoop();
  }
}

void Scheduler::Drain() {
  common::MutexLock lock(&mutex_);
  paused_ = false;
  if (SpawnWorkersLocked()) {
    lock.Unlock();
    DrainLoop();
    lock.Lock();
  }
  workers_idle_.Wait(mutex_, [this]() ADA_REQUIRES(mutex_) {
    return pending_.empty() && active_workers_ == 0;
  });
}

SchedulerStats Scheduler::stats() const {
  common::MutexLock lock(&mutex_);
  SchedulerStats stats = stats_;
  stats.queue_depth = pending_.size();
  stats.active_workers = active_workers_;
  return stats;
}

Json Scheduler::StatsJson() const {
  SchedulerStats stats = this->stats();
  Json::Object object;
  object["jobs_submitted"] = Json(stats.submitted);
  object["jobs_completed"] = Json(stats.completed);
  object["jobs_failed"] = Json(stats.failed);
  object["jobs_cancelled"] = Json(stats.cancelled);
  object["jobs_superseded"] = Json(stats.superseded);
  object["jobs_expired"] = Json(stats.expired);
  object["jobs_shed"] = Json(stats.shed);
  object["cache_served"] = Json(stats.cache_served);
  object["sessions_executed"] = Json(stats.sessions_executed);
  object["queue_depth"] = Json(static_cast<int64_t>(stats.queue_depth));
  object["active_workers"] = Json(static_cast<int64_t>(stats.active_workers));
  Json::Object cache;
  cache["entries"] = Json(static_cast<int64_t>(cache_.entries()));
  cache["bytes"] = Json(static_cast<int64_t>(cache_.bytes()));
  cache["max_bytes"] = Json(static_cast<int64_t>(cache_.max_bytes()));
  cache["hits"] = Json(cache_.hits());
  cache["misses"] = Json(cache_.misses());
  cache["evictions"] = Json(cache_.evictions());
  cache["superseded"] = Json(cache_.superseded());
  object["cache"] = Json(std::move(cache));
  return Json(std::move(object));
}

bool Scheduler::SpawnWorkersLocked() {
  // One worker per pending job, capped at the configured ceiling; a
  // worker drains jobs until the queue is empty, then retires.
  while (!paused_ && !pending_.empty() &&
         active_workers_ < std::min(options_.max_workers,
                                    active_workers_ + pending_.size())) {
    if (active_workers_ >= options_.max_workers) break;
    ++active_workers_;
    UpdateGaugesLocked();
    bool scheduled =
        common::ThreadPool::Shared().TrySchedule([this] { DrainLoop(); });
    if (!scheduled) {
      // The shared pool only refuses during process teardown; the
      // caller runs the drain inline (with mutex_ released — DrainLoop
      // takes it itself) so no admitted job is ever lost.
      return true;
    }
  }
  return false;
}

void Scheduler::DrainLoop() {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::MutexLock lock(&mutex_);
  while (!paused_ && !pending_.empty()) {
    auto first = pending_.begin();
    JobId id = first->second;
    pending_.erase(first);
    Job& job = *jobs_.at(id);
    auto now = std::chrono::steady_clock::now();
    job.wait_seconds = SecondsBetween(job.enqueue_time, now);
    metrics.GetHistogram("service/job_wait_seconds").Record(job.wait_seconds);
    if (job.has_deadline && now > job.deadline) {
      ++stats_.expired;
      metrics.GetCounter("service/jobs_expired").Increment();
      std::vector<Notification> notifications;
      FinishJob(job, JobState::kExpired,
                common::DeadlineExceededError(common::StrFormat(
                    "job %lld waited %.1f ms, past its %.1f ms deadline",
                    static_cast<long long>(id), 1e3 * job.wait_seconds,
                    job.request.deadline_millis)),
                &notifications);
      if (!notifications.empty()) {
        lock.Unlock();
        FireNotifications(notifications);
        lock.Lock();
      }
      continue;
    }
    job.state = JobState::kRunning;
    UpdateGaugesLocked();
    lock.Unlock();
    RunJob(job);
    lock.Lock();
  }
  --active_workers_;
  UpdateGaugesLocked();
  workers_idle_.NotifyAll();
}

void Scheduler::RunJob(Job& job) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::Status injected = ADA_FAILPOINT("service.worker.session");
  if (!injected.ok()) {
    std::vector<Notification> notifications;
    {
      common::MutexLock lock(&mutex_);
      FinishJob(job, JobState::kFailed, injected, &notifications);
    }
    FireNotifications(notifications);
    return;
  }

  // Admission-time optimization: repeat analyses of a fingerprint-
  // identical (dataset, options) pair are served from memory with no
  // second session execution.
  if (std::optional<CachedAnalysis> cached = cache_.Lookup(job.fingerprint)) {
    std::vector<Notification> notifications;
    {
      common::MutexLock lock(&mutex_);
      job.cache_hit = true;
      job.summary = std::move(cached->summary);
      job.report = std::move(cached->report);
      job.knowledge_items = cached->knowledge_items;
      ++stats_.cache_served;
      metrics.GetCounter("service/cache_served_jobs").Increment();
      FinishJob(job, JobState::kDone, common::OkStatus(), &notifications);
    }
    FireNotifications(notifications);
    return;
  }

  common::WallTimer timer;
  // Each job gets a private K-DB so concurrent sessions cannot
  // interleave collection writes (and reports stay deterministic).
  kdb::Database db;
  core::AnalysisSession session(&db);
  const dataset::Taxonomy* taxonomy =
      job.request.taxonomy.has_value() ? &*job.request.taxonomy : nullptr;
  auto result = session.Run(job.request.log, taxonomy, job.request.options);
  double run_seconds = timer.ElapsedSeconds();
  metrics.GetHistogram("service/job_run_seconds").Record(run_seconds);
  metrics.GetCounter("service/sessions_executed").Increment();

  if (!result.ok()) {
    std::vector<Notification> notifications;
    {
      common::MutexLock lock(&mutex_);
      job.run_seconds = run_seconds;
      ++stats_.sessions_executed;
      FinishJob(job, JobState::kFailed, result.status(), &notifications);
    }
    FireNotifications(notifications);
    return;
  }

  std::string report = core::RenderSessionReport(
      result.value(), job.request.options.dataset_id);
  CachedAnalysis entry;
  entry.fingerprint = job.fingerprint;
  entry.dataset_id = job.request.options.dataset_id;
  entry.summary = result->summary;
  entry.report = report;
  entry.knowledge_items = static_cast<int64_t>(result->knowledge.size());
  entry.cohort = job.request.cohort;
  entry.generation = job.request.cohort_generation;
  CommitCacheEntry(std::move(entry), /*fire_hook=*/true);
  if (!job.request.cohort.empty() && options_.on_session_success) {
    // After the cache commit, so the warm state a delta job inherits
    // never describes a result that was not also served/replicated.
    options_.on_session_success(job.request, result.value());
  }

  std::vector<Notification> notifications;
  {
    common::MutexLock lock(&mutex_);
    job.run_seconds = run_seconds;
    ++stats_.sessions_executed;
    job.summary = std::move(result.value().summary);
    job.report = std::move(report);
    job.knowledge_items = static_cast<int64_t>(result->knowledge.size());
    FinishJob(job, JobState::kDone, common::OkStatus(), &notifications);
  }
  FireNotifications(notifications);
}

void Scheduler::CommitCacheEntry(CachedAnalysis entry, bool fire_hook) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  CachedAnalysis committed = entry;  // The hook sees the full record.
  cache_.Insert(std::move(entry));
  if (!options_.cache_directory.empty()) {
    // A persist is an O(all entries) full rewrite of the cache file;
    // doing one per job made the write cost quadratic under load.
    // Batch until enough inserts accumulate (the destructor flushes
    // the remainder).
    if (cache_.dirty_entries() >= options_.cache_persist_threshold) {
      common::Status persisted = cache_.Persist(options_.cache_directory);
      if (!persisted.ok()) {
        // Persistence is an optimization for the next boot; a failed
        // write degrades to in-memory caching only.
        metrics.GetCounter("service/cache_persist_failures").Increment();
        ADA_LOG(kWarning) << "service: cache persist failed: "
                          << persisted.ToString();
      }
    } else {
      metrics.GetCounter("service/cache_persist_skipped").Increment();
    }
  }
  if (fire_hook && options_.on_result_committed) {
    options_.on_result_committed(committed);
  }
}

void Scheduler::FinishJob(Job& job, JobState state, common::Status status,
                          std::vector<Notification>* notifications) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  job.state = state;
  job.status = std::move(status);
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      metrics.GetCounter("service/jobs_completed").Increment();
      break;
    case JobState::kFailed:
      ++stats_.failed;
      metrics.GetCounter("service/jobs_failed").Increment();
      break;
    case JobState::kCancelled:
      ++stats_.cancelled;
      metrics.GetCounter("service/jobs_cancelled").Increment();
      break;
    case JobState::kExpired:
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // kExpired counters are bumped at the shed site.
  }
  UpdateGaugesLocked();
  state_changed_.NotifyAll();
  // Extract (and retire) this job's completion subscriptions. The
  // callbacks are deliberately NOT invoked here: firing them with
  // mutex_ held deadlocked any subscriber that called back into the
  // scheduler, so the caller drains `notifications` after unlocking.
  auto range = subscriptions_by_job_.equal_range(job.id);
  if (range.first != range.second) {
    JobSnapshot snapshot = job.Snapshot();
    for (auto it = range.first; it != range.second; ++it) {
      auto subscription = subscriptions_.find(it->second);
      if (subscription == subscriptions_.end()) continue;
      notifications->push_back(
          Notification{std::move(subscription->second.callback), snapshot});
      subscriptions_.erase(subscription);
    }
    subscriptions_by_job_.erase(range.first, range.second);
  }
}

void Scheduler::FireNotifications(std::vector<Notification>& notifications) {
  for (Notification& notification : notifications) {
    notification.callback(notification.snapshot);
  }
  notifications.clear();
}

void Scheduler::UpdateGaugesLocked() const {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetGauge("service/queue_depth")
      .Set(static_cast<double>(pending_.size()));
  metrics.GetGauge("service/active_workers")
      .Set(static_cast<double>(active_workers_));
}

}  // namespace service
}  // namespace adahealth
