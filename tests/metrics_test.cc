#include "common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/json.h"
#include "common/thread_pool.h"

namespace adahealth {
namespace common {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.25);
}

TEST(LatencyHistogramTest, TracksCountTotalMinMax) {
  LatencyHistogram histogram;
  histogram.Record(0.5);
  histogram.Record(0.1);
  histogram.Record(2.0);
  LatencyHistogram::Snapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.total_seconds, 2.6);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 2.0);
  EXPECT_NEAR(snapshot.mean_seconds(), 2.6 / 3.0, 1e-12);
}

TEST(LatencyHistogramTest, SamplesLandInDecadeBuckets) {
  LatencyHistogram histogram;
  histogram.Record(5e-7);  // <= 1us -> bucket 0.
  histogram.Record(5e-4);  // (1e-4, 1e-3] -> bucket 3.
  histogram.Record(1e9);   // Overflow -> last bucket.
  LatencyHistogram::Snapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.buckets[0], 1);
  EXPECT_EQ(snapshot.buckets[3], 1);
  EXPECT_EQ(snapshot.buckets[LatencyHistogram::kNumBuckets - 1], 1);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1);
  // Counters, gauges and histograms live in separate namespaces.
  registry.GetGauge("x").Set(2.0);
  EXPECT_EQ(registry.GetCounter("x").value(), 1);
}

TEST(MetricsRegistryTest, CountersBumpedFromThreadPoolWorkers) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("pool/increments");
  LatencyHistogram& histogram = registry.GetHistogram("pool/latency");
  constexpr size_t kTasks = 4000;
  ThreadPool pool(8);
  ParallelFor(pool, 0, kTasks, [&](size_t i) {
    counter.Increment();
    histogram.Record(static_cast<double>(i % 7) * 1e-4);
    // Concurrent first-touch creation must also be safe.
    registry.GetCounter("pool/created_concurrently").Increment();
  });
  EXPECT_EQ(counter.value(), static_cast<int64_t>(kTasks));
  EXPECT_EQ(histogram.count(), static_cast<int64_t>(kTasks));
  EXPECT_EQ(registry.GetCounter("pool/created_concurrently").value(),
            static_cast<int64_t>(kTasks));
}

TEST(ScopedTimerTest, AccumulatesOneSamplePerScope) {
  MetricsRegistry registry;
  for (int repeat = 0; repeat < 3; ++repeat) {
    ScopedTimer timer(registry, "scope_seconds");
  }
  LatencyHistogram::Snapshot snapshot =
      registry.GetHistogram("scope_seconds").snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_GE(snapshot.total_seconds, 0.0);
  EXPECT_LE(snapshot.min_seconds, snapshot.max_seconds);
}

TEST(ScopedTimerTest, StopRecordsOnceAndDetaches) {
  MetricsRegistry registry;
  {
    ScopedTimer timer(registry, "stop_seconds");
    double elapsed = timer.Stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(timer.Stop(), 0.0);  // Second Stop is a no-op.
  }  // Destruction after Stop must not record again.
  EXPECT_EQ(registry.GetHistogram("stop_seconds").count(), 1);
}

TEST(MetricsRegistryTest, JsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("kmeans/iterations").Increment(17);
  registry.GetGauge("partial_mining/selected_fraction").Set(0.4);
  registry.GetHistogram("session/total_seconds").Record(0.25);

  std::string dumped = registry.ToJson().Dump();
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  const Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("kmeans/iterations")->AsInt(), 17);
  const Json* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(
      gauges->Find("partial_mining/selected_fraction")->AsDouble(), 0.4);
  const Json* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* session = histograms->Find("session/total_seconds");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->Find("count")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(session->Find("total_seconds")->AsDouble(), 0.25);
  EXPECT_EQ(session->Find("buckets")->AsArray().size(),
            LatencyHistogram::kNumBuckets);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  LatencyHistogram& histogram = registry.GetHistogram("h");
  counter.Increment(5);
  histogram.Record(1.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  counter.Increment();  // The pre-Reset reference still works.
  EXPECT_EQ(registry.GetCounter("c").value(), 1);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
