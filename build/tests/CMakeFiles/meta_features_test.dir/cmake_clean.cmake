file(REMOVE_RECURSE
  "CMakeFiles/meta_features_test.dir/meta_features_test.cc.o"
  "CMakeFiles/meta_features_test.dir/meta_features_test.cc.o.d"
  "meta_features_test"
  "meta_features_test.pdb"
  "meta_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
