#include "service/cohort_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

constexpr char kRecordsHeader[] = "patient_id,exam_type,day\n";
constexpr char kRecordsSuffix[] = ".records";
constexpr char kManifestSuffix[] = ".manifest.json";
constexpr size_t kMaxCohortName = 64;

/// Same tmp + fsync + rename + directory-fsync discipline as the K-DB
/// (kdb/storage.cc), with the ingest snapshot failpoint in place of the
/// storage ones. Any failure removes the temporary file and leaves a
/// previous `path` untouched.
Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  auto fail = [&tmp_path](Status status) {
    std::remove(tmp_path.c_str());
    return status;
  };

  Status injected = ADA_FAILPOINT("service.ingest.snapshot");
  if (!injected.ok()) return fail(injected);

  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return common::UnavailableError("cannot open temp file for writing: " +
                                    tmp_path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  if (written != contents.size() || std::fflush(file) != 0) {
    std::fclose(file);
    return fail(common::DataLossError("write error on file: " + tmp_path));
  }
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    return fail(common::DataLossError("fsync failed on file: " + tmp_path));
  }
  if (std::fclose(file) != 0) {
    return fail(common::DataLossError("close failed on file: " + tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(common::UnavailableError("rename failed: " + tmp_path +
                                         " -> " + path));
  }

  // Make the rename itself durable. Best-effort: a directory that
  // cannot be fsynced only weakens durability, it does not corrupt
  // either file version.
  std::string directory = path;
  size_t slash = directory.find_last_of('/');
  directory = slash == std::string::npos ? "." : directory.substr(0, slash);
  int dir_fd = ::open(directory.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    if (::fsync(dir_fd) != 0) {
      ADA_LOG(kWarning) << "directory fsync failed for " << directory;
    }
    // Scoped open/fsync/close of a directory fd, not a socket.
    ::close(dir_fd);  // ada-lint: allow(raw-socket)
  }
  return common::OkStatus();
}

Json MatrixToJson(const transform::Matrix& matrix) {
  Json::Array rows;
  rows.reserve(matrix.rows());
  for (size_t r = 0; r < matrix.rows(); ++r) {
    Json::Array row;
    row.reserve(matrix.cols());
    for (double value : matrix.Row(r)) row.emplace_back(value);
    rows.emplace_back(std::move(row));
  }
  return Json(std::move(rows));
}

StatusOr<transform::Matrix> MatrixFromJson(const Json& json) {
  if (!json.is_array()) {
    return common::DataLossError("warm centroids: expected an array");
  }
  const Json::Array& rows = json.AsArray();
  if (rows.empty()) return transform::Matrix();
  if (!rows[0].is_array()) {
    return common::DataLossError("warm centroids: expected array rows");
  }
  const size_t cols = rows[0].AsArray().size();
  transform::Matrix matrix(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].is_array() || rows[r].AsArray().size() != cols) {
      return common::DataLossError("warm centroids: ragged rows");
    }
    const Json::Array& row = rows[r].AsArray();
    for (size_t c = 0; c < cols; ++c) {
      if (!row[c].is_number()) {
        return common::DataLossError("warm centroids: non-numeric cell");
      }
      matrix.At(r, c) = row[c].AsDouble();
    }
  }
  return matrix;
}

int64_t ReadInt(const Json& object, std::string_view key, int64_t fallback) {
  const Json* field = object.Find(key);
  if (field == nullptr || !field->is_number()) return fallback;
  return field->is_int() ? field->AsInt()
                         : static_cast<int64_t>(field->AsDouble());
}

common::Counter& IngestCounter(const char* name) {
  return common::MetricsRegistry::Default().GetCounter(name);
}

}  // namespace

bool IsValidCohortName(std::string_view name) {
  if (name.empty() || name.size() > kMaxCohortName) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

CohortStore::CohortStore(CohortStoreOptions options)
    : options_(std::move(options)) {
  if (options_.directory.empty()) return;
  ::mkdir(options_.directory.c_str(), 0755);  // Best-effort; may exist.

  // Discover persisted cohorts by their manifests. Salvage semantics:
  // a cohort that fails to load is skipped with a warning — the store
  // still starts, serving every cohort that does parse.
  std::vector<std::string> names;
  DIR* dir = ::opendir(options_.directory.c_str());
  if (dir == nullptr) {
    ADA_LOG(kWarning) << "cohort store: cannot list directory "
                      << options_.directory;
    return;
  }
  while (dirent* entry = ::readdir(dir)) {
    std::string_view file_name = entry->d_name;
    if (file_name.size() <= std::string_view(kManifestSuffix).size()) continue;
    if (!file_name.ends_with(kManifestSuffix)) continue;
    file_name.remove_suffix(std::string_view(kManifestSuffix).size());
    if (IsValidCohortName(file_name)) names.emplace_back(file_name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());

  common::MutexLock lock(&mutex_);
  for (const std::string& name : names) {
    Status loaded = LoadCohort(name);
    if (!loaded.ok()) {
      ADA_LOG(kWarning) << "cohort store: skipping cohort '" << name
                        << "': " << loaded.ToString();
    }
  }
}

std::string CohortStore::RecordsPath(const std::string& cohort) const {
  return options_.directory + "/" + cohort + kRecordsSuffix;
}

std::string CohortStore::ManifestPath(const std::string& cohort) const {
  return options_.directory + "/" + cohort + kManifestSuffix;
}

Json CohortStore::ManifestJson(const std::string& cohort,
                               const CohortState& state) const {
  Json::Object doc;
  doc["cohort"] = cohort;
  doc["generation"] = state.generation;
  doc["committed_bytes"] = static_cast<int64_t>(state.committed_bytes);
  doc["records"] = static_cast<int64_t>(state.log.num_records());
  doc["patients"] = static_cast<int64_t>(state.log.num_patients());
  Json::Object marginals;
  for (const auto& [exam, count] : state.exam_marginals) {
    marginals[exam] = count;
  }
  doc["exam_marginals"] = Json(std::move(marginals));
  doc["distinct_pairs"] = static_cast<int64_t>(state.distinct_pairs.size());
  if (state.has_warm) {
    Json::Object warm;
    warm["analyzed_generation"] = state.analyzed_generation;
    warm["analyzed_records"] = state.analyzed_records;
    warm["best_k"] = static_cast<int64_t>(state.warm_best_k);
    Json::Array exam_types;
    exam_types.reserve(state.warm_exam_types.size());
    for (int32_t id : state.warm_exam_types) {
      exam_types.emplace_back(static_cast<int64_t>(id));
    }
    warm["exam_types"] = Json(std::move(exam_types));
    warm["centroids"] = MatrixToJson(state.warm_centroids);
    doc["warm"] = Json(std::move(warm));
  }
  return Json(std::move(doc));
}

Status CohortStore::WriteManifest(const std::string& cohort,
                                  const CohortState& state) {
  if (options_.directory.empty()) {
    // In-memory store: nothing to persist, but the failpoint still
    // governs the commit so tests can exercise the degradation paths
    // without a disk.
    return ADA_FAILPOINT("service.ingest.snapshot");
  }
  return AtomicWriteFile(ManifestPath(cohort),
                         ManifestJson(cohort, state).Pretty() + "\n");
}

Status CohortStore::AppendRecordsFile(const std::string& cohort,
                                      const CohortState& state,
                                      const std::string& payload) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.ingest.append"));
  if (options_.directory.empty()) return common::OkStatus();
  const std::string path = RecordsPath(cohort);
  // Clear any uncommitted residue from a previous torn append before
  // extending the committed prefix (the loader never read it; this
  // keeps the on-disk bytes equal to committed ones after we succeed).
  // A cohort with nothing committed yet ("wb") covers the first-batch
  // crash window — a records file left behind without a manifest —
  // where truncate-to-committed_bytes would need a file that may not
  // exist; with a committed prefix ("ab") the file must exist, so a
  // failed truncate is a real error.
  if (state.committed_bytes > 0 &&
      ::truncate(path.c_str(), static_cast<off_t>(state.committed_bytes)) !=
          0) {
    return common::UnavailableError("cannot truncate records file: " + path);
  }
  std::FILE* file =
      std::fopen(path.c_str(), state.committed_bytes > 0 ? "ab" : "wb");
  if (file == nullptr) {
    return common::UnavailableError("cannot open records file: " + path);
  }
  size_t written = std::fwrite(payload.data(), 1, payload.size(), file);
  if (written != payload.size() || std::fflush(file) != 0) {
    std::fclose(file);
    return common::DataLossError("write error on records file: " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    return common::DataLossError("fsync failed on records file: " + path);
  }
  if (std::fclose(file) != 0) {
    return common::DataLossError("close failed on records file: " + path);
  }
  return common::OkStatus();
}

StatusOr<IngestResult> CohortStore::Ingest(
    const std::string& cohort, const std::vector<dataset::RawExamRecord>& rows,
    int64_t expected_generation) {
  if (!IsValidCohortName(cohort)) {
    return common::InvalidArgumentError(
        "invalid cohort name (want 1-64 chars of [A-Za-z0-9_-]): '" + cohort +
        "'");
  }
  if (rows.empty()) {
    return common::InvalidArgumentError("empty ingest batch");
  }
  for (const dataset::RawExamRecord& row : rows) {
    if (row.patient < 0) {
      return common::InvalidArgumentError("negative patient id in batch");
    }
    if (row.exam_type.empty()) {
      return common::InvalidArgumentError("empty exam-type name in batch");
    }
  }

  // Render the batch once, outside any I/O: the same RFC-4180 fields
  // ExamLog::ToCsv writes, so the accumulated file parses via FromCsv.
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.reserve(rows.size());
  for (const dataset::RawExamRecord& row : rows) {
    csv_rows.push_back({std::to_string(row.patient), row.exam_type,
                        std::to_string(row.day)});
  }

  common::MutexLock lock(&mutex_);
  const bool is_new = cohorts_.find(cohort) == cohorts_.end();
  // Replay guard (see the header): a conditional batch commits only
  // against the exact generation the client observed. Checked before
  // any mutation, so a rejected replay is a pure no-op.
  if (expected_generation >= 0) {
    const int64_t current =
        is_new ? 0 : cohorts_.find(cohort)->second.generation;
    if (current != expected_generation) {
      return common::FailedPreconditionError(common::StrFormat(
          "cohort '%s' is at generation %lld, not the expected %lld "
          "(a retried batch most likely already committed)",
          cohort.c_str(), static_cast<long long>(current),
          static_cast<long long>(expected_generation)));
    }
  }
  CohortState& state = cohorts_[cohort];
  auto discard_new = [&] {
    if (is_new) cohorts_.erase(cohort);
  };

  std::string payload = is_new ? std::string(kRecordsHeader) : std::string();
  payload += common::WriteCsv(csv_rows);

  // Step 1: extend the records file (its committed prefix is untouched
  // on failure, so the prior generation stays readable).
  Status appended = AppendRecordsFile(cohort, state, payload);
  if (!appended.ok()) {
    discard_new();
    return appended;
  }

  // Step 2: apply to memory, keeping a rollback copy.
  CohortState backup = state;
  Status applied = state.log.Append(rows);
  if (!applied.ok()) {
    // Unreachable after the validation above, but keep the rollback
    // airtight anyway.
    state = std::move(backup);
    discard_new();
    return applied;
  }
  for (const dataset::RawExamRecord& row : rows) {
    ++state.exam_marginals[row.exam_type];
  }
  // The batch's records are the log's tail; read their interned ids
  // back for the density pair set.
  const auto& records = state.log.records();
  for (size_t i = records.size() - rows.size(); i < records.size(); ++i) {
    state.distinct_pairs.emplace(records[i].patient, records[i].exam_type);
  }
  state.generation += 1;
  state.committed_bytes += payload.size();

  // Step 3: commit the manifest. On failure, restore memory and the
  // file to the previous generation (all-or-nothing ingest).
  Status committed = WriteManifest(cohort, state);
  if (!committed.ok()) {
    if (!options_.directory.empty()) {
      if (::truncate(RecordsPath(cohort).c_str(),
                     static_cast<off_t>(backup.committed_bytes)) != 0) {
        // The stale tail past committed_bytes is harmless: the loader
        // reads only the committed prefix and the next append truncates.
        ADA_LOG(kWarning) << "cohort '" << cohort
                          << "': could not roll back records file";
      }
    }
    state = std::move(backup);
    discard_new();
    return committed;
  }

  stats_.batches += 1;
  stats_.records += static_cast<int64_t>(rows.size());
  IngestCounter("service/ingest_batches").Increment();
  IngestCounter("service/ingest_records")
      .Increment(static_cast<int64_t>(rows.size()));

  IngestResult result;
  result.generation = state.generation;
  result.batch_records = static_cast<int64_t>(rows.size());
  result.total_records = static_cast<int64_t>(state.log.num_records());
  result.patients = static_cast<int64_t>(state.log.num_patients());
  return result;
}

StatusOr<JobRequest> CohortStore::BuildCohortJob(const std::string& cohort) {
  common::MutexLock lock(&mutex_);
  auto it = cohorts_.find(cohort);
  if (it == cohorts_.end()) {
    return common::NotFoundError("unknown cohort: '" + cohort + "'");
  }
  const CohortState& state = it->second;
  JobRequest request;
  request.log = state.log;
  request.cohort = cohort;
  request.cohort_generation = state.generation;
  request.options.dataset_id = cohort;
  if (!state.has_warm) return request;

  // Drift gate: when too much of the cohort arrived after the analyzed
  // generation, the prior centroids describe a different population —
  // run cold rather than steer the sweep with a stale hint.
  const int64_t records = static_cast<int64_t>(state.log.num_records());
  const int64_t fresh = records - state.analyzed_records;
  const double drift =
      records > 0 ? static_cast<double>(fresh) / static_cast<double>(records)
                  : 0.0;
  if (drift > options_.drift_threshold) {
    stats_.cold_fallbacks += 1;
    IngestCounter("service/ingest_cold_fallbacks").Increment();
    return request;
  }
  Status adapted = ADA_FAILPOINT("service.ingest.adapt");
  if (!adapted.ok()) {
    stats_.cold_fallbacks += 1;
    IngestCounter("service/ingest_cold_fallbacks").Increment();
    return request;
  }
  request.options.warm.centroids = state.warm_centroids;
  request.options.warm.exam_types = state.warm_exam_types;
  request.options.warm.best_k = state.warm_best_k;
  // candidate_ks is deliberately left untouched: it is hashed in order
  // by SessionOptionsSignature, so reordering it here would give delta
  // and cold submissions of the same snapshot different fingerprints
  // and defeat the cache dedup. The optimizer itself evaluates the
  // hint's K first (keyed off warm_centroids, which is excluded from
  // the signature) so the sweep still seeds from the prior best K.
  stats_.warm_starts += 1;
  IngestCounter("service/ingest_warm_starts").Increment();
  return request;
}

void CohortStore::OnAnalysisCommitted(const std::string& cohort,
                                      int64_t generation,
                                      int64_t analyzed_records,
                                      const core::SessionResult& result) {
  if (result.optimizer.candidates.empty() ||
      result.mining_exam_types.empty()) {
    return;  // Degraded session without a usable clustering.
  }
  const cluster::Clustering& best = result.optimizer.best().clustering;
  if (best.centroids.empty()) return;

  common::MutexLock lock(&mutex_);
  auto it = cohorts_.find(cohort);
  if (it == cohorts_.end()) return;
  CohortState& state = it->second;
  // Stale or duplicate notification: only a strictly newer generation
  // may replace the warm state. Re-analyses of an already-analyzed
  // generation are ignored so the stored hint — and therefore every
  // job BuildCohortJob derives from it — stays deterministic until new
  // data actually arrives.
  if (generation <= state.analyzed_generation) return;

  CohortState candidate = state;
  candidate.has_warm = true;
  candidate.warm_centroids = best.centroids;
  candidate.warm_exam_types = result.mining_exam_types;
  candidate.warm_best_k = result.optimizer.best_k();
  candidate.analyzed_generation = generation;
  // The caller-supplied count of the analyzed snapshot, NOT the live
  // log's (which may already hold batches ingested after the snapshot
  // and would under-count fresh records at the drift gate).
  candidate.analyzed_records = analyzed_records;

  Status persisted = WriteManifest(cohort, candidate);
  if (!persisted.ok()) {
    // Degrade to cold: an uninstallable warm state is dropped, never
    // half-trusted — the next job re-analyzes from scratch.
    stats_.snapshot_failures += 1;
    IngestCounter("service/ingest_snapshot_failures").Increment();
    ADA_LOG(kWarning) << "cohort '" << cohort
                      << "': warm-state snapshot failed, next job runs cold ("
                      << persisted.ToString() << ")";
    return;
  }
  state = std::move(candidate);
}

StatusOr<CohortDescriptors> CohortStore::Descriptors(
    const std::string& cohort) const {
  common::MutexLock lock(&mutex_);
  auto it = cohorts_.find(cohort);
  if (it == cohorts_.end()) {
    return common::NotFoundError("unknown cohort: '" + cohort + "'");
  }
  const CohortState& state = it->second;
  CohortDescriptors descriptors;
  descriptors.generation = state.generation;
  descriptors.records = static_cast<int64_t>(state.log.num_records());
  descriptors.patients = static_cast<int64_t>(state.log.num_patients());
  descriptors.exam_types = static_cast<int64_t>(state.log.num_exam_types());
  const double cells = static_cast<double>(descriptors.patients) *
                       static_cast<double>(descriptors.exam_types);
  descriptors.density =
      cells > 0 ? static_cast<double>(state.distinct_pairs.size()) / cells
                : 0.0;
  descriptors.mean_records_per_patient =
      descriptors.patients > 0
          ? static_cast<double>(descriptors.records) /
                static_cast<double>(descriptors.patients)
          : 0.0;
  descriptors.exam_marginals = state.exam_marginals;
  return descriptors;
}

StatusOr<dataset::ExamLog> CohortStore::Snapshot(
    const std::string& cohort) const {
  common::MutexLock lock(&mutex_);
  auto it = cohorts_.find(cohort);
  if (it == cohorts_.end()) {
    return common::NotFoundError("unknown cohort: '" + cohort + "'");
  }
  return it->second.log;
}

CohortStoreStats CohortStore::stats() const {
  common::MutexLock lock(&mutex_);
  CohortStoreStats stats = stats_;
  stats.cohorts = static_cast<int64_t>(cohorts_.size());
  stats.generations = 0;
  for (const auto& [name, state] : cohorts_) {
    stats.generations += state.generation;
  }
  return stats;
}

Json CohortStore::StatsJson() const {
  CohortStoreStats stats = this->stats();
  Json::Object object;
  object["batches"] = stats.batches;
  object["records"] = stats.records;
  object["cohorts"] = stats.cohorts;
  object["generations"] = stats.generations;
  object["warm_starts"] = stats.warm_starts;
  object["cold_fallbacks"] = stats.cold_fallbacks;
  object["snapshot_failures"] = stats.snapshot_failures;
  return Json(std::move(object));
}

size_t CohortStore::num_cohorts() const {
  common::MutexLock lock(&mutex_);
  return cohorts_.size();
}

Status CohortStore::LoadCohort(const std::string& cohort) {
  auto manifest_text = common::ReadFileToString(ManifestPath(cohort));
  if (!manifest_text.ok()) return manifest_text.status();
  auto manifest = Json::Parse(manifest_text.value());
  if (!manifest.ok()) {
    return common::DataLossError("manifest parse error: " +
                                 manifest.status().message());
  }
  const int64_t generation = ReadInt(*manifest, "generation", 0);
  const int64_t committed_bytes = ReadInt(*manifest, "committed_bytes", 0);
  if (generation <= 0 || committed_bytes < 0) {
    return common::DataLossError("manifest has no committed generation");
  }

  auto records_text = common::ReadFileToString(RecordsPath(cohort));
  if (!records_text.ok()) return records_text.status();
  if (records_text->size() < static_cast<size_t>(committed_bytes)) {
    return common::DataLossError(
        "records file shorter than the committed prefix");
  }
  // The salvage step: only the committed prefix is parsed; bytes past
  // it are a torn append from a crash between append and snapshot and
  // are dropped (the prior generation stays readable).
  const size_t total_bytes = records_text->size();
  records_text->resize(static_cast<size_t>(committed_bytes));
  auto log = dataset::ExamLog::FromCsv(records_text.value());
  if (!log.ok()) {
    return common::DataLossError("committed records prefix unreadable: " +
                                 log.status().message());
  }
  if (total_bytes > static_cast<size_t>(committed_bytes)) {
    ADA_LOG(kWarning) << "cohort '" << cohort << "': dropped "
                      << (total_bytes - static_cast<size_t>(committed_bytes))
                      << " uncommitted byte(s) past generation " << generation;
  }

  CohortState state;
  state.generation = generation;
  state.log = std::move(log).value();
  state.committed_bytes = static_cast<size_t>(committed_bytes);
  // Rebuild the incremental descriptors from the restored log (load is
  // the one place a full pass is inherent — the log itself is re-read).
  for (const dataset::ExamRecord& record : state.log.records()) {
    ++state.exam_marginals[std::string(
        state.log.dictionary().Name(record.exam_type))];
    state.distinct_pairs.emplace(record.patient, record.exam_type);
  }

  if (const Json* warm = manifest->Find("warm"); warm != nullptr) {
    const Json* centroids = warm->Find("centroids");
    const Json* exam_types = warm->Find("exam_types");
    if (centroids != nullptr && exam_types != nullptr &&
        exam_types->is_array()) {
      auto matrix = MatrixFromJson(*centroids);
      if (matrix.ok() && !matrix->empty()) {
        state.has_warm = true;
        state.warm_centroids = std::move(matrix).value();
        for (const Json& id : exam_types->AsArray()) {
          if (id.is_number()) {
            state.warm_exam_types.push_back(
                static_cast<int32_t>(id.AsInt()));
          }
        }
        state.warm_best_k =
            static_cast<int32_t>(ReadInt(*warm, "best_k", 0));
        state.analyzed_generation = ReadInt(*warm, "analyzed_generation", 0);
        state.analyzed_records = ReadInt(*warm, "analyzed_records", 0);
      } else if (!matrix.ok()) {
        // A corrupt warm block only costs a cold re-analysis.
        ADA_LOG(kWarning) << "cohort '" << cohort
                          << "': dropping corrupt warm state ("
                          << matrix.status().ToString() << ")";
      }
    }
  }

  cohorts_[cohort] = std::move(state);
  return common::OkStatus();
}

}  // namespace service
}  // namespace adahealth
