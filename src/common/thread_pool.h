// Fixed-size worker pool with a ParallelFor convenience wrapper.
//
// The ADA-HEALTH optimizer evaluates many candidate configurations
// (e.g. K values) concurrently; this pool is the local stand-in for the
// paper's "online cloud-based services for automatic configuration".
#ifndef ADAHEALTH_COMMON_THREAD_POOL_H_
#define ADAHEALTH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adahealth {
namespace common {

/// A fixed pool of worker threads executing queued tasks FIFO.
/// Thread-safe. Destruction waits for all queued tasks to finish.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [begin, end) across `pool`, blocking until all
/// iterations complete. Iterations are distributed in contiguous chunks.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_THREAD_POOL_H_
