#include "patterns/rules.h"

#include <gtest/gtest.h>
#include "patterns/apriori.h"

namespace adahealth {
namespace patterns {
namespace {

// 10 transactions: {0,1} together 6 times, 0 alone 2, 1 alone 1,
// {2} once.
TransactionDb MakeDb() {
  TransactionDb db;
  db.num_items = 3;
  for (int i = 0; i < 6; ++i) db.transactions.push_back({0, 1});
  db.transactions.push_back({0});
  db.transactions.push_back({0});
  db.transactions.push_back({1});
  db.transactions.push_back({2});
  return db;
}

std::vector<FrequentItemset> MineAll(const TransactionDb& db) {
  MiningOptions options;
  options.min_support_count = 1;
  auto itemsets = MineApriori(db, options);
  EXPECT_TRUE(itemsets.ok());
  return itemsets.value();
}

const AssociationRule* FindRule(const std::vector<AssociationRule>& rules,
                                const std::vector<ItemId>& antecedent,
                                const std::vector<ItemId>& consequent) {
  for (const auto& rule : rules) {
    if (rule.antecedent == antecedent && rule.consequent == consequent) {
      return &rule;
    }
  }
  return nullptr;
}

TEST(RulesTest, ConfidenceAndLiftValues) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.1;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  // support({0,1}) = 6; support({0}) = 8; support({1}) = 7.
  const AssociationRule* rule = FindRule(rules.value(), {0}, {1});
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->support, 0.6, 1e-12);
  EXPECT_NEAR(rule->confidence, 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(rule->lift, (6.0 / 8.0) / 0.7, 1e-12);

  const AssociationRule* reverse = FindRule(rules.value(), {1}, {0});
  ASSERT_NE(reverse, nullptr);
  EXPECT_NEAR(reverse->confidence, 6.0 / 7.0, 1e-12);
}

TEST(RulesTest, MinConfidenceFilters) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.8;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  // {0}=>{1} has confidence 0.75 and must be filtered out.
  EXPECT_EQ(FindRule(rules.value(), {0}, {1}), nullptr);
  // {1}=>{0} has confidence ~0.857 and stays.
  EXPECT_NE(FindRule(rules.value(), {1}, {0}), nullptr);
}

TEST(RulesTest, MinLiftFilters) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.1;
  options.min_lift = 1.05;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : rules.value()) {
    EXPECT_GE(rule.lift, 1.05);
  }
}

TEST(RulesTest, SortedByConfidenceDescending) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.1;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence, (*rules)[i].confidence);
  }
}

TEST(RulesTest, AntecedentAndConsequentPartitionItemset) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.1;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  EXPECT_FALSE(rules->empty());
  for (const auto& rule : rules.value()) {
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    for (ItemId a : rule.antecedent) {
      for (ItemId c : rule.consequent) EXPECT_NE(a, c);
    }
  }
}

TEST(RulesTest, ThreeItemRulesEnumerated) {
  TransactionDb db;
  db.num_items = 3;
  for (int i = 0; i < 5; ++i) db.transactions.push_back({0, 1, 2});
  RuleOptions options;
  options.min_confidence = 0.9;
  auto rules = GenerateRules(MineAll(db), db.size(), options);
  ASSERT_TRUE(rules.ok());
  // All 6 bipartitions of {0,1,2} have confidence 1.
  int three_item_rules = 0;
  for (const auto& rule : rules.value()) {
    if (rule.antecedent.size() + rule.consequent.size() == 3) {
      ++three_item_rules;
      EXPECT_NEAR(rule.confidence, 1.0, 1e-12);
    }
  }
  EXPECT_EQ(three_item_rules, 6);
}

TEST(RulesTest, RejectsInvalidOptions) {
  TransactionDb db = MakeDb();
  RuleOptions options;
  options.min_confidence = 0.0;
  EXPECT_FALSE(GenerateRules(MineAll(db), db.size(), options).ok());
  options.min_confidence = 1.5;
  EXPECT_FALSE(GenerateRules(MineAll(db), db.size(), options).ok());
  options.min_confidence = 0.5;
  EXPECT_FALSE(GenerateRules(MineAll(db), 0, options).ok());
}

TEST(RulesTest, EmptyItemsetsYieldNoRules) {
  RuleOptions options;
  auto rules = GenerateRules({}, 10, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace patterns
}  // namespace adahealth
