// Ablation A1: clustering algorithm and initialization.
//
// Justifies the paper's choice of the Kanungo et al. kd-tree filtering
// K-means (ref [3]) over plain Lloyd at equal quality, and k-means++
// over random initialization. Runs on the paper-scale cohort VSM.
#include <benchmark/benchmark.h>

#include "cluster/bisecting.h"
#include "cluster/filtering_kmeans.h"
#include "cluster/kmeans.h"
#include "dataset/synthetic_cohort.h"
#include "transform/vsm.h"

namespace {

using namespace adahealth;

const transform::Matrix& CohortVsm() {
  static const transform::Matrix* kVsm = [] {
    auto cohort =
        dataset::SyntheticCohortGenerator(dataset::PaperScaleConfig())
            .Generate();
    return new transform::Matrix(transform::BuildVsm(cohort->log));
  }();
  return *kVsm;
}

void BM_LloydKMeans(benchmark::State& state) {
  const transform::Matrix& vsm = CohortVsm();
  cluster::KMeansOptions options;
  options.k = static_cast<int32_t>(state.range(0));
  options.seed = 20160516;
  double sse = 0.0;
  for (auto _ : state) {
    auto clustering = cluster::RunKMeans(vsm, options);
    sse = clustering->sse;
    benchmark::DoNotOptimize(clustering->assignments);
  }
  state.counters["sse"] = sse;
}
BENCHMARK(BM_LloydKMeans)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FilteringKMeans(benchmark::State& state) {
  const transform::Matrix& vsm = CohortVsm();
  cluster::KMeansOptions options;
  options.k = static_cast<int32_t>(state.range(0));
  options.seed = 20160516;
  double sse = 0.0;
  for (auto _ : state) {
    auto clustering = cluster::RunFilteringKMeans(vsm, options);
    sse = clustering->sse;
    benchmark::DoNotOptimize(clustering->assignments);
  }
  state.counters["sse"] = sse;
}
BENCHMARK(BM_FilteringKMeans)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_BisectingKMeans(benchmark::State& state) {
  const transform::Matrix& vsm = CohortVsm();
  cluster::BisectingOptions options;
  options.k = static_cast<int32_t>(state.range(0));
  options.seed = 20160516;
  double sse = 0.0;
  for (auto _ : state) {
    auto clustering = cluster::RunBisectingKMeans(vsm, options);
    sse = clustering->sse;
    benchmark::DoNotOptimize(clustering->assignments);
  }
  state.counters["sse"] = sse;
}
BENCHMARK(BM_BisectingKMeans)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_KMeansInit(benchmark::State& state) {
  const transform::Matrix& vsm = CohortVsm();
  cluster::KMeansOptions options;
  options.k = 8;
  options.init = state.range(0) == 0 ? cluster::KMeansInit::kRandom
                                     : cluster::KMeansInit::kKMeansPlusPlus;
  double sse = 0.0;
  int64_t iterations = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    auto clustering = cluster::RunKMeans(vsm, options);
    sse = clustering->sse;
    iterations = clustering->iterations;
    benchmark::DoNotOptimize(clustering->assignments);
  }
  state.counters["sse"] = sse;
  state.counters["iterations"] = static_cast<double>(iterations);
  state.SetLabel(state.range(0) == 0 ? "random" : "kmeans++");
}
BENCHMARK(BM_KMeansInit)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
