#include "cluster/kmeans_accel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace cluster {

namespace {

using common::Rng;
using common::StatusOr;
using transform::CsrMatrix;
using transform::Matrix;
using transform::SquaredDistance;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimum per-pass work estimate before a pass is worth fanning out to
/// the shared pool (the work-budget heuristic: small matrices stay
/// serial, where pool hand-off would cost more than the scan itself).
constexpr size_t kMinParallelWork = size_t{1} << 20;

/// Below this many clusters the Hamerly bookkeeping is pure overhead:
/// a successful prune saves at most k-1 distance screens, while the
/// bound maintenance (tighten distances, drift updates, per-point
/// bound decay) costs a constant amount per point per pass regardless
/// of k. At k <= 3 the engine therefore skips the bounds entirely and
/// runs the fused screen over every point — still bit-identical, and
/// never slower than the naive scan because the screen itself is the
/// vectorized kernel.
constexpr size_t kMinClustersForBounds = 4;

/// Estimated distance-kernel work of one full assignment pass; the
/// sparse screen touches only the non-zeros, so its budget counts nnz
/// instead of n x dims.
inline size_t PassWork(const Matrix& data, size_t k) {
  return data.rows() * k * data.cols();
}
inline size_t PassWork(const CsrMatrix& data, size_t k) {
  return data.num_nonzeros() * k;
}

/// Relative padding applied to every derived Euclidean bound so that
/// accumulated floating-point rounding (sqrt, drift additions) can
/// never turn a conservative bound optimistic. Scales with dims
/// because the underlying squared-distance rounding does.
double BoundPad(size_t dims) {
  return 8.0 * static_cast<double>(dims + 8) *
         std::numeric_limits<double>::epsilon();
}

/// Per-point Hamerly state. `upper[i]` always >= dist(x_i, centroid of
/// assignment[i]); `lower[i]` always <= distance from x_i to its
/// second-closest centroid. Both are Euclidean (not squared) so the
/// triangle-inequality drift updates compose additively.
struct Bounds {
  std::vector<int32_t> assignment;
  std::vector<double> upper;
  std::vector<double> lower;
};

/// Everything a pass over the points needs, shared read-only across
/// chunks (per-point writes touch disjoint rows).
template <typename Data>
struct PassContext {
  const Data* data = nullptr;
  const Matrix* centroids = nullptr;
  /// Transposed (dims x k) centroid block; rebuilt once per pass and
  /// consumed only by the sparse screen (empty on the dense path).
  const Matrix* centroids_t = nullptr;
  const std::vector<double>* row_norms = nullptr;
  const std::vector<double>* centroid_norms = nullptr;
  const std::vector<double>* half_separation = nullptr;  // s[c].
  double pad_up = 1.0;
  double pad_down = 1.0;
  double fused_err = 0.0;
};

/// Representation dispatch of the fused ||x||^2 + ||c||^2 - 2 x.c
/// screen. Both overloads fill `fused[c]` for every centroid with the
/// same error envelope (FusedRelativeError covers every dispatched
/// reduction order), so the recheck logic downstream is shared.
inline void FusedDistances(const PassContext<Matrix>& ctx, size_t i,
                           std::vector<double>& fused) {
  transform::SquaredDistanceToAll(ctx.data->Row(i), (*ctx.row_norms)[i],
                                  *ctx.centroids, *ctx.centroid_norms,
                                  fused);
}
inline void FusedDistances(const PassContext<CsrMatrix>& ctx, size_t i,
                           std::vector<double>& fused) {
  transform::SparseSquaredDistanceToAll(
      ctx.data->Row(i), (*ctx.row_norms)[i], *ctx.centroids_t,
      *ctx.centroid_norms, fused);
}

/// Rebuilds the transposed centroid block the sparse screen gathers
/// from; a no-op on the dense path.
inline void PrepareScreen(const Matrix& /*data*/,
                          const Matrix& /*centroids*/,
                          Matrix& /*centroids_t*/) {}
inline void PrepareScreen(const CsrMatrix& /*data*/, const Matrix& centroids,
                          Matrix& centroids_t) {
  const size_t k = centroids.rows();
  const size_t dims = centroids.cols();
  if (centroids_t.rows() != dims || centroids_t.cols() != k) {
    centroids_t = Matrix(dims, k);
  }
  for (size_t c = 0; c < k; ++c) {
    std::span<const double> row = centroids.Row(c);
    for (size_t d = 0; d < dims; ++d) centroids_t.At(d, c) = row[d];
  }
}

/// Full re-assignment of point `i`, bit-identical to the naive scan.
/// The fused kernel screens the centroids first: the exact argmin is
/// always among the centroids whose conservative interval
/// [fused - err, fused + err] reaches the smallest interval upper end
/// (its own interval contains the true minimum). When exactly one
/// centroid survives the screen it IS the exact argmin, so the winner
/// is decided with no exact distance at all — the dominant cost for
/// sparse rows, whose screen is O(nnz * k) but whose exact recheck is
/// O(dims). Only a near-tie inside the error envelope (rare: genuine
/// duplicates or ~1e-13 relative gaps) falls back to exact distances,
/// scanned in index order with the naive strict-< tie-break — so the
/// winner (and therefore every downstream centroid and SSE bit)
/// matches the naive engine exactly. Returns true if the assignment
/// changed. `fused` and `lower_est` are caller-provided k-sized
/// scratch; when `track_bounds` is false (small-k runs, where the
/// Hamerly state is never read) the bound updates and their sqrts are
/// skipped entirely.
template <typename Data>
bool FullScanPoint(const PassContext<Data>& ctx, size_t i,
                   bool track_bounds, std::vector<double>& fused,
                   std::vector<double>& lower_est, Bounds& bounds) {
  const Matrix& centroids = *ctx.centroids;
  const size_t k = centroids.rows();
  const double x_norm2 = (*ctx.row_norms)[i];
  const std::vector<double>& c_norms = *ctx.centroid_norms;

  FusedDistances(ctx, i, fused);
  double screen = kInf;
  for (size_t c = 0; c < k; ++c) {
    const double err = ctx.fused_err * (x_norm2 + c_norms[c]);
    screen = std::min(screen, fused[c] + err);
  }

  size_t candidates = 0;
  size_t winner = 0;
  for (size_t c = 0; c < k; ++c) {
    const double err = ctx.fused_err * (x_norm2 + c_norms[c]);
    const double low = fused[c] - err;
    if (track_bounds) {
      // Screened-out centroids are provably farther than the winner; a
      // padded Euclidean lower estimate is all the second-best bound
      // needs. (Candidates get the exact value below.)
      lower_est[c] = std::sqrt(low > 0.0 ? low : 0.0);
    }
    if (low <= screen) {
      ++candidates;
      winner = c;
    }
  }

  int32_t best_c;
  double upper = 0.0;
  if (candidates == 1) {
    best_c = static_cast<int32_t>(winner);
    if (track_bounds) {
      const double err = ctx.fused_err * (x_norm2 + c_norms[winner]);
      upper = std::sqrt(std::max(0.0, fused[winner] + err));
    }
  } else {
    double best_d2 = kInf;
    best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const double err = ctx.fused_err * (x_norm2 + c_norms[c]);
      if (fused[c] - err > screen) continue;
      const double d2 =
          internal::ExactRowDistance(*ctx.data, i, centroids.Row(c));
      if (track_bounds) lower_est[c] = std::sqrt(d2);
      if (d2 < best_d2) {
        best_d2 = d2;
        best_c = static_cast<int32_t>(c);
      }
    }
    upper = std::sqrt(best_d2);
  }

  const bool changed = bounds.assignment[i] != best_c;
  bounds.assignment[i] = best_c;
  if (track_bounds) {
    double second = kInf;
    for (size_t c = 0; c < k; ++c) {
      if (static_cast<int32_t>(c) == best_c) continue;
      second = std::min(second, lower_est[c]);
    }
    bounds.upper[i] = upper * ctx.pad_up;
    bounds.lower[i] = second == kInf ? kInf : second * ctx.pad_down;
  }
  return changed;
}

template <typename Data>
StatusOr<Clustering> RunAccelImpl(const Data& data,
                                  const KMeansOptions& options,
                                  common::ThreadPool& pool) {
  common::Status valid = internal::ValidateKMeansArgs(data, options);
  if (!valid.ok()) return valid;

  const size_t n = data.rows();
  const size_t dims = data.cols();
  const size_t k = static_cast<size_t>(options.k);

  Rng rng(options.seed);
  Clustering result;
  result.k = options.k;
  result.centroids = internal::StartingCentroids(data, options, rng);

  const std::vector<double> row_norms = transform::RowSquaredNorms(data);
  const double pad_up = 1.0 + BoundPad(dims);
  const double pad_down = 1.0 - BoundPad(dims);
  const double fused_err = transform::FusedRelativeError(dims);

  Bounds bounds;
  bounds.assignment.assign(n, 0);
  bounds.upper.assign(n, 0.0);
  bounds.lower.assign(n, 0.0);
  std::vector<double> centroid_norms(k, 0.0);
  std::vector<double> half_separation(k, kInf);
  std::vector<double> drift(k, 0.0);
  Matrix centroids_t;

  const bool parallel =
      pool.num_threads() > 1 && PassWork(data, k) >= kMinParallelWork;
  const bool use_bounds = k >= kMinClustersForBounds;

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::Counter& skipped_counter =
      metrics.GetCounter("kmeans/skipped_distance_checks");
  common::Counter& recompute_counter =
      metrics.GetCounter("kmeans/bound_recomputes");
  common::Counter& chunks_counter =
      metrics.GetCounter("kmeans/parallel_chunks");
  if (!use_bounds) {
    metrics.GetCounter("kmeans/smallk_unbounded_runs").Increment();
  }

  PassContext<Data> ctx;
  ctx.data = &data;
  ctx.centroids = &result.centroids;
  ctx.centroids_t = &centroids_t;
  ctx.row_norms = &row_norms;
  ctx.centroid_norms = &centroid_norms;
  ctx.half_separation = &half_separation;
  ctx.pad_up = pad_up;
  ctx.pad_down = pad_down;
  ctx.fused_err = fused_err;

  // One assignment pass. `first` forces a full scan of every point
  // (and, mirroring the naive engine's empty-previous comparison,
  // reports every point as changed); later passes consult the bounds —
  // unless this is a small-k run, where every pass is a full fused
  // scan.
  auto assignment_pass = [&](bool first) -> int64_t {
    for (size_t c = 0; c < k; ++c) {
      std::span<const double> row = result.centroids.Row(c);
      centroid_norms[c] = transform::Dot(row, row);
    }
    PrepareScreen(data, result.centroids, centroids_t);
    std::atomic<int64_t> changed_total{0};
    std::atomic<int64_t> skipped_total{0};
    std::atomic<int64_t> recompute_total{0};
    auto chunk_body = [&](size_t chunk_begin, size_t chunk_end) {
      std::vector<double> fused(k);
      std::vector<double> lower_est(k);
      int64_t changed = 0;
      int64_t skipped = 0;
      int64_t recomputes = 0;
      const int64_t all_k = static_cast<int64_t>(k);
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        if (first) {
          FullScanPoint(ctx, i, use_bounds, fused, lower_est, bounds);
          ++changed;
          continue;
        }
        if (!use_bounds) {
          if (FullScanPoint(ctx, i, false, fused, lower_est, bounds)) {
            ++changed;
          }
          continue;
        }
        const size_t a = static_cast<size_t>(bounds.assignment[i]);
        const double prune_at =
            std::max(bounds.lower[i], half_separation[a]);
        if (bounds.upper[i] < prune_at) {
          skipped += all_k;
          continue;
        }
        // Tighten the upper bound with one exact distance; most
        // drift-inflated bounds collapse below the prune line here.
        const double d2 = internal::ExactRowDistance(
            data, i, result.centroids.Row(a));
        ++recomputes;
        bounds.upper[i] = std::sqrt(d2) * pad_up;
        if (bounds.upper[i] < prune_at) {
          skipped += all_k - 1;
          continue;
        }
        if (FullScanPoint(ctx, i, true, fused, lower_est, bounds)) {
          ++changed;
        }
      }
      changed_total.fetch_add(changed, std::memory_order_relaxed);
      skipped_total.fetch_add(skipped, std::memory_order_relaxed);
      recompute_total.fetch_add(recomputes, std::memory_order_relaxed);
    };
    if (parallel) {
      size_t chunks = common::ParallelForChunks(pool, 0, n, chunk_body);
      chunks_counter.Increment(static_cast<int64_t>(chunks));
    } else {
      chunk_body(0, n);
    }
    skipped_counter.Increment(skipped_total.load());
    recompute_counter.Increment(recompute_total.load());
    return changed_total.load();
  };

  // Centroid recomputation on the fixed chunk grid shared with the
  // naive engine: chunk partials merged in chunk order produce the
  // same bits whether the partials were computed serially or on the
  // pool.
  auto recompute_centroids = [&]() {
    if (!parallel || n <= internal::kCentroidChunkRows) {
      RecomputeCentroids(data, bounds.assignment, result.centroids);
      return;
    }
    const size_t num_chunks =
        (n + internal::kCentroidChunkRows - 1) /
        internal::kCentroidChunkRows;
    std::vector<internal::CentroidAccumulator> parts(num_chunks);
    size_t chunks = common::ParallelForChunks(
        pool, 0, n,
        [&](size_t chunk_begin, size_t chunk_end) {
          const size_t id = chunk_begin / internal::kCentroidChunkRows;
          parts[id] = internal::CentroidAccumulator(k, dims);
          internal::AccumulateRows(data, bounds.assignment, chunk_begin,
                                   chunk_end, parts[id]);
        },
        internal::kCentroidChunkRows);
    chunks_counter.Increment(static_cast<int64_t>(chunks));
    internal::CentroidAccumulator total(k, dims);
    for (size_t id = 0; id < num_chunks; ++id) {
      internal::MergeAccumulator(parts[id], total);
    }
    internal::FinalizeCentroids(data, bounds.assignment, total,
                                result.centroids);
  };

  common::WallTimer assign_timer;
  double assign_seconds = 0.0;
  int64_t assign_passes = 0;
  Matrix old_centroids;

  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    assign_timer.Restart();
    const int64_t changed = assignment_pass(iter == 0);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
    result.iterations = iter + 1;
    if (changed == 0) {
      result.converged = true;
      break;
    }
    if (use_bounds) old_centroids = result.centroids;
    recompute_centroids();
    if (!use_bounds) continue;  // Small k: no bounds to maintain.

    // Bound maintenance: each centroid's padded drift loosens the
    // upper bound of its members; the maximum drift loosens every
    // lower bound; half the deflated nearest-other-centroid distance
    // gives the additional Hamerly prune line s[c].
    double max_drift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      drift[c] = std::sqrt(SquaredDistance(old_centroids.Row(c),
                                           result.centroids.Row(c))) *
                 pad_up;
      max_drift = std::max(max_drift, drift[c]);
    }
    for (size_t i = 0; i < n; ++i) {
      bounds.upper[i] =
          (bounds.upper[i] + drift[static_cast<size_t>(
                                 bounds.assignment[i])]) *
          pad_up;
      const double lowered = bounds.lower[i] - max_drift;
      bounds.lower[i] = lowered > 0.0 ? lowered * pad_down : 0.0;
    }
    for (size_t c = 0; c < k; ++c) {
      double nearest = kInf;
      for (size_t other = 0; other < k; ++other) {
        if (other == c) continue;
        nearest = std::min(
            nearest, SquaredDistance(result.centroids.Row(c),
                                     result.centroids.Row(other)));
      }
      half_separation[c] =
          nearest == kInf ? kInf : 0.5 * std::sqrt(nearest) * pad_down;
    }
  }

  if (!result.converged) {
    // Mirror the naive engine: the loop exited after a recompute, so
    // the assignment is stale against the final centroids.
    assign_timer.Restart();
    assignment_pass(false);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
  }

  // Final SSE: the naive engine folds the exact per-point distances in
  // row order during its last pass; computing the identical terms
  // (possibly in parallel) and folding them in the identical order
  // reproduces its sum bit for bit.
  std::vector<double> terms(n);
  auto term_body = [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t i = chunk_begin; i < chunk_end; ++i) {
      terms[i] = internal::ExactRowDistance(
          data, i, result.centroids.Row(
                       static_cast<size_t>(bounds.assignment[i])));
    }
  };
  if (parallel) {
    size_t chunks = common::ParallelForChunks(pool, 0, n, term_body);
    chunks_counter.Increment(static_cast<int64_t>(chunks));
  } else {
    term_body(0, n);
  }
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) sse += terms[i];
  result.sse = sse;
  result.assignments = std::move(bounds.assignment);

  metrics.GetCounter("kmeans/runs").Increment();
  metrics.GetCounter("kmeans/iterations").Increment(result.iterations);
  metrics.GetCounter("kmeans/assign_passes").Increment(assign_passes);
  metrics.GetHistogram("kmeans/assign_seconds").Record(assign_seconds);
  return result;
}

}  // namespace

StatusOr<Clustering> RunAcceleratedKMeans(const Matrix& data,
                                          const KMeansOptions& options) {
  return internal::RunAcceleratedKMeansOnPool(data, options,
                                              common::ThreadPool::Shared());
}

StatusOr<Clustering> RunAcceleratedKMeans(const CsrMatrix& data,
                                          const KMeansOptions& options) {
  return internal::RunAcceleratedKMeansOnPool(data, options,
                                              common::ThreadPool::Shared());
}

namespace internal {

StatusOr<Clustering> RunAcceleratedKMeansOnPool(const Matrix& data,
                                                const KMeansOptions& options,
                                                common::ThreadPool& pool) {
  return RunAccelImpl(data, options, pool);
}

StatusOr<Clustering> RunAcceleratedKMeansOnPool(const CsrMatrix& data,
                                                const KMeansOptions& options,
                                                common::ThreadPool& pool) {
  return RunAccelImpl(data, options, pool);
}

}  // namespace internal

}  // namespace cluster
}  // namespace adahealth
