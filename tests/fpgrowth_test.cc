#include "patterns/fpgrowth.h"

#include <gtest/gtest.h>
#include "common/rng.h"
#include "dataset/synthetic_cohort.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {
namespace {

TransactionDb MakeDb() {
  TransactionDb db;
  db.num_items = 5;
  db.transactions = {
      {0, 1, 4}, {0, 3}, {0, 2},    {0, 1, 3}, {1, 2},
      {0, 2},    {1, 2}, {0, 1, 2, 4}, {0, 1, 2},
  };
  return db;
}

TransactionDb RandomDb(size_t num_transactions, size_t num_items,
                       double item_probability, uint64_t seed) {
  common::Rng rng(seed);
  TransactionDb db;
  db.num_items = num_items;
  for (size_t t = 0; t < num_transactions; ++t) {
    std::vector<ItemId> transaction;
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(item_probability)) {
        transaction.push_back(static_cast<ItemId>(i));
      }
    }
    db.transactions.push_back(std::move(transaction));
  }
  return db;
}

TEST(FpGrowthTest, MatchesAprioriOnTextbookDb) {
  for (int64_t min_support : {1, 2, 3, 4, 5}) {
    MiningOptions options;
    options.min_support_count = min_support;
    auto apriori = MineApriori(MakeDb(), options);
    auto fpgrowth = MineFpGrowth(MakeDb(), options);
    ASSERT_TRUE(apriori.ok());
    ASSERT_TRUE(fpgrowth.ok());
    EXPECT_EQ(apriori.value(), fpgrowth.value())
        << "min_support " << min_support;
  }
}

// Property test: FP-growth and Apriori agree on random databases across
// densities and thresholds.
struct ParityCase {
  size_t num_transactions;
  size_t num_items;
  double density;
  int64_t min_support;
};

class MinerParityTest : public testing::TestWithParam<ParityCase> {};

TEST_P(MinerParityTest, FpGrowthEqualsApriori) {
  const ParityCase& param = GetParam();
  TransactionDb db = RandomDb(param.num_transactions, param.num_items,
                              param.density, /*seed=*/param.num_items * 31 +
                                  param.num_transactions);
  MiningOptions options;
  options.min_support_count = param.min_support;
  auto apriori = MineApriori(db, options);
  auto fpgrowth = MineFpGrowth(db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fpgrowth.ok());
  EXPECT_EQ(apriori.value(), fpgrowth.value());
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, MinerParityTest,
    testing::Values(ParityCase{50, 8, 0.30, 5}, ParityCase{50, 8, 0.30, 2},
                    ParityCase{100, 10, 0.20, 8},
                    ParityCase{100, 10, 0.50, 20},
                    ParityCase{200, 6, 0.40, 10},
                    ParityCase{30, 12, 0.25, 3},
                    ParityCase{80, 15, 0.15, 4},
                    ParityCase{60, 5, 0.70, 12}));

TEST(FpGrowthTest, MaxItemsetSizeCaps) {
  MiningOptions options;
  options.min_support_count = 1;
  options.max_itemset_size = 2;
  auto fpgrowth = MineFpGrowth(MakeDb(), options);
  ASSERT_TRUE(fpgrowth.ok());
  auto apriori = MineApriori(MakeDb(), options);
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(fpgrowth.value(), apriori.value());
  for (const auto& itemset : fpgrowth.value()) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
}

TEST(FpGrowthTest, EmptyDatabase) {
  TransactionDb db;
  db.num_items = 4;
  MiningOptions options;
  options.min_support_count = 1;
  auto itemsets = MineFpGrowth(db, options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_TRUE(itemsets->empty());
}

TEST(FpGrowthTest, RejectsInvalidSupport) {
  MiningOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(MineFpGrowth(MakeDb(), options).ok());
}

TEST(FpGrowthTest, SinglePathDatabase) {
  // Transactions nested like a chain exercise the single-path shortcut.
  TransactionDb db;
  db.num_items = 4;
  db.transactions = {{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}};
  MiningOptions options;
  options.min_support_count = 1;
  auto fpgrowth = MineFpGrowth(db, options);
  auto apriori = MineApriori(db, options);
  ASSERT_TRUE(fpgrowth.ok());
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(fpgrowth.value(), apriori.value());
  // 2^4 - 1 itemsets exist with support >= 1.
  EXPECT_EQ(fpgrowth->size(), 15u);
}

TEST(FpGrowthTest, AgreesOnSyntheticCohortTransactions) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  TransactionDb db = BuildTransactions(cohort->log);
  MiningOptions options;
  options.min_support_count = AbsoluteSupport(0.25, db.size());
  options.max_itemset_size = 3;
  auto apriori = MineApriori(db, options);
  auto fpgrowth = MineFpGrowth(db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fpgrowth.ok());
  EXPECT_EQ(apriori.value(), fpgrowth.value());
  EXPECT_GT(fpgrowth->size(), 0u);
}

TEST(ClosedItemsetsTest, FiltersNonClosed) {
  // {0} support 3 is not closed if {0,1} also has support 3.
  std::vector<FrequentItemset> itemsets{
      {{0}, 3}, {{1}, 3}, {{0, 1}, 3}, {{2}, 2}, {{0, 2}, 1}};
  std::vector<FrequentItemset> closed = ClosedItemsets(itemsets);
  auto contains = [&](const std::vector<ItemId>& items) {
    for (const auto& itemset : closed) {
      if (itemset.items == items) return true;
    }
    return false;
  };
  EXPECT_FALSE(contains({0}));
  EXPECT_FALSE(contains({1}));
  EXPECT_TRUE(contains({0, 1}));
  EXPECT_TRUE(contains({2}));   // Superset {0,2} has lower support.
  EXPECT_TRUE(contains({0, 2}));
}

TEST(TransactionsTest, BuildTransactionsDeduplicates) {
  std::vector<dataset::Patient> patients{{0, 50, -1}, {1, 60, -1}};
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  auto b = dictionary.Intern("b");
  std::vector<dataset::ExamRecord> records{
      {0, b, 1}, {0, a, 2}, {0, a, 3}, {1, b, 4}};
  dataset::ExamLog log(std::move(patients), std::move(dictionary),
                       std::move(records));
  TransactionDb db = BuildTransactions(log);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transactions[0], (std::vector<ItemId>{a, b}));  // Sorted.
  EXPECT_EQ(db.transactions[1], (std::vector<ItemId>{b}));
}

TEST(TransactionsTest, LevelAggregationUsesTaxonomyNodes) {
  auto taxonomy =
      dataset::Taxonomy::Build({0, 0, 1}, {"g0", "g1"}, {0, 0}, {"c"});
  ASSERT_TRUE(taxonomy.ok());
  std::vector<dataset::Patient> patients{{0, 50, -1}};
  dataset::ExamDictionary dictionary;
  auto e0 = dictionary.Intern("e0");
  auto e1 = dictionary.Intern("e1");
  auto e2 = dictionary.Intern("e2");
  std::vector<dataset::ExamRecord> records{{0, e0, 1}, {0, e1, 2},
                                           {0, e2, 3}};
  dataset::ExamLog log(std::move(patients), std::move(dictionary),
                       std::move(records));
  TransactionDb level0 = BuildTransactionsAtLevel(log, taxonomy.value(), 0);
  EXPECT_EQ(level0.transactions[0], (std::vector<ItemId>{0, 1, 2}));
  TransactionDb level1 = BuildTransactionsAtLevel(log, taxonomy.value(), 1);
  // e0, e1 -> group 0 (node 3); e2 -> group 1 (node 4).
  EXPECT_EQ(level1.transactions[0], (std::vector<ItemId>{3, 4}));
  TransactionDb level2 = BuildTransactionsAtLevel(log, taxonomy.value(), 2);
  // Everything -> the single category (node 5).
  EXPECT_EQ(level2.transactions[0], (std::vector<ItemId>{5}));
}

}  // namespace
}  // namespace patterns
}  // namespace adahealth
