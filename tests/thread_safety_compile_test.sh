#!/bin/sh
# Negative-compilation harness for the Clang thread-safety gate.
#
# Proves the ADA_THREAD_SAFETY contract has teeth: a well-formed
# control snippet must compile under -Werror=thread-safety, and each
# seeded lock-discipline violation (unguarded access, missing REQUIRES,
# double acquire) must FAIL with a thread-safety diagnostic. A harness
# bug that silently softened the gate (wrong flag spelling, macro
# expanding to nothing under clang) would show up here as a violation
# snippet compiling cleanly.
#
# Requires a clang++ on PATH (the analysis is Clang-only); exits 77 —
# the ctest SKIP_RETURN_CODE — when there is none, so GCC-only hosts
# skip instead of fail. CI's thread-safety job always has clang.
set -u

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
SRC_DIR="$SCRIPT_DIR/../src"

CLANGXX=""
for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                 clang++-15; do
  if command -v "$candidate" >/dev/null 2>&1; then
    CLANGXX="$candidate"
    break
  fi
done
if [ -z "$CLANGXX" ]; then
  echo "SKIP: no clang++ on PATH (thread-safety analysis is Clang-only)"
  exit 77
fi

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

COMMON_PREAMBLE='
#include "common/sync.h"
using adahealth::common::CondVar;
using adahealth::common::Mutex;
using adahealth::common::MutexLock;

class Account {
 public:
  void Deposit(int amount) ADA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    balance_ += amount;
  }
  int BalanceLocked() const ADA_REQUIRES(mu_) { return balance_; }

 protected:
  mutable Mutex mu_;
  int balance_ ADA_GUARDED_BY(mu_) = 0;
};
'

compile() {
  printf '%s\n%s\n' "$COMMON_PREAMBLE" "$1" >"$WORKDIR/case.cc"
  "$CLANGXX" -std=c++20 -fsyntax-only -I "$SRC_DIR" \
      -Wthread-safety -Werror=thread-safety \
      "$WORKDIR/case.cc" 2>"$WORKDIR/stderr.txt"
}

failures=0

expect_clean() {
  name="$1"
  snippet="$2"
  if compile "$snippet"; then
    echo "PASS: $name compiles cleanly"
  else
    echo "FAIL: $name should compile but did not:"
    sed 's/^/  /' "$WORKDIR/stderr.txt"
    failures=$((failures + 1))
  fi
}

expect_violation() {
  name="$1"
  snippet="$2"
  if compile "$snippet"; then
    echo "FAIL: $name compiled cleanly; the gate has no teeth"
    failures=$((failures + 1))
  elif ! grep -q 'thread-safety' "$WORKDIR/stderr.txt"; then
    # Failing for any *other* reason (syntax error, wrong flag) would
    # let a broken harness masquerade as a working gate.
    echo "FAIL: $name failed without a thread-safety diagnostic:"
    sed 's/^/  /' "$WORKDIR/stderr.txt"
    failures=$((failures + 1))
  else
    echo "PASS: $name rejected with a thread-safety diagnostic"
  fi
}

expect_clean "control (locked access, honored contracts)" '
class Control : public Account {
 public:
  int Audit() ADA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return BalanceLocked();
  }
};
'

expect_violation "unguarded write to a GUARDED_BY member" '
class UnguardedWrite : public Account {
 public:
  void Corrupt() { balance_ = -1; }
};
'

expect_violation "calling a REQUIRES method without the lock" '
class MissingRequires : public Account {
 public:
  int Peek() { return BalanceLocked(); }
};
'

expect_violation "double acquire of a held mutex" '
class DoubleAcquire : public Account {
 public:
  void Deadlock() ADA_EXCLUDES(mu_) {
    MutexLock outer(&mu_);
    MutexLock inner(&mu_);
    balance_ = 0;
  }
};
'

expect_violation "re-entrant call into an EXCLUDES method" '
class Reentrant : public Account {
 public:
  void DepositTwice() ADA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Deposit(1);
  }
};
'

expect_violation "condvar wait without holding the mutex" '
class WaitWithoutLock : public Account {
 public:
  void BadWait() {
    cv_.Wait(mu_);
  }

 private:
  CondVar cv_;
};
'

if [ "$failures" -ne 0 ]; then
  echo "thread_safety_compile_test: $failures case(s) failed"
  exit 1
fi
echo "thread_safety_compile_test: all cases behaved"
exit 0
