#!/usr/bin/env bash
# End-to-end smoke test of the analysis service over a real loopback
# socket: starts ada_server, drives it with ada_client, and asserts the
# three behaviors the service exists for —
#   1. a cold job runs a session and reports done (exit 0);
#   2. the identical repeat submission is a fingerprint-cache hit;
#   3. a queued job whose must-start deadline passes while the single
#      worker is busy is shed as expired (exit 6);
# then cross-checks the scheduler/cache counters via the stats verb,
# runs a multi-client exchange (pipelined ping batches and cache-served
# submits in parallel — a serial accept-handle-close server would
# deadlock here), and stops the server with the shutdown verb.
#
# Usage: tools/service_smoke.sh [BUILD_DIR]   (default: build)
# CI runs this under ASan+UBSan (the service-smoke job).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="${BUILD_DIR}/tools/ada_server"
CLIENT="${BUILD_DIR}/tools/ada_client"
LOG="$(mktemp /tmp/ada_server_smoke.XXXXXX.log)"
SERVER_PID=""

for binary in "${SERVER}" "${CLIENT}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "service_smoke: missing ${binary}; build the ada_server and" \
         "ada_client targets first" >&2
    exit 2
  fi
done

cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -f "${LOG}"
}
trap cleanup EXIT

fail() {
  echo "service_smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "${LOG}" >&2 || true
  exit 1
}

# One worker makes the deadline scenario deterministic: the queue can
# only drain one job at a time.
"${SERVER}" --port 0 --workers 1 >"${LOG}" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "${LOG}" | head -1)"
  [[ -n "${PORT}" ]] && break
  kill -0 "${SERVER_PID}" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
[[ -n "${PORT}" ]] || fail "server never reported its port"
echo "service_smoke: server up on port ${PORT} (pid ${SERVER_PID})"

client() { "${CLIENT}" --port "${PORT}" "$@"; }

echo "== cold job =="
COLD_OUT="$(client submit --patients 100 --exam-types 20 --seed 7 \
    --dataset-id smoke-cold --fast --wait)" \
  || fail "cold job exited $? (want 0)"
grep -q '^state: done$' <<<"${COLD_OUT}" || fail "cold job not done"
grep -q '^cache_hit: false$' <<<"${COLD_OUT}" \
  || fail "cold job unexpectedly served from cache"

echo "== identical repeat (cache hit) =="
REPEAT_OUT="$(client submit --patients 100 --exam-types 20 --seed 7 \
    --dataset-id smoke-cold --fast --wait)" \
  || fail "repeat job exited $? (want 0)"
grep -q '^state: done$' <<<"${REPEAT_OUT}" || fail "repeat job not done"
grep -q '^cache_hit: true$' <<<"${REPEAT_OUT}" \
  || fail "repeat submission missed the fingerprint cache"

echo "== past-deadline job (worker busy) =="
# Occupy the single worker with a distinct cold job, then submit a job
# that must start within 1 ms — it expires in the queue.
BUSY_OUT="$(client submit --patients 200 --exam-types 20 --seed 11 \
    --dataset-id smoke-busy --fast)" || fail "busy submit failed"
BUSY_ID="$(sed -n 's/^job_id: //p' <<<"${BUSY_OUT}")"
[[ -n "${BUSY_ID}" ]] || fail "no job_id in busy submit output"
set +e
client submit --patients 60 --exam-types 20 --seed 13 \
    --dataset-id smoke-expired --fast --deadline-ms 1 --wait
EXPIRED_CODE=$?
set -e
[[ "${EXPIRED_CODE}" -eq 6 ]] \
  || fail "past-deadline job exited ${EXPIRED_CODE} (want 6 = expired)"

# Let the busy job finish so the completed counter is settled.
client result --job "${BUSY_ID}" >/dev/null \
  || fail "busy job did not complete"

echo "== stats counters =="
STATS="$(client stats)" || fail "stats verb failed"
python3 - "${STATS}" <<'EOF' || fail "stats counters off"
import json, sys
stats = json.loads(sys.argv[1])
expect = {
    "jobs_submitted": 4,
    "jobs_completed": 3,   # cold + cache-hit repeat + busy
    "jobs_expired": 1,
    "jobs_failed": 0,
    "jobs_shed": 0,
    "sessions_executed": 2,  # cold + busy; the repeat never ran
    "cache_served": 1,
}
bad = {k: (stats.get(k), want) for k, want in expect.items()
       if stats.get(k) != want}
if stats["cache"]["hits"] != 1:
    bad["cache.hits"] = (stats["cache"]["hits"], 1)
if bad:
    print(f"counter mismatches (got, want): {bad}", file=sys.stderr)
    sys.exit(1)
EOF

echo "== streaming cohort: ingest -> delta job -> cache supersede =="
# Grow a cohort over two ingest batches. The first generation's job is
# a cold run; repeating it is a cache hit on the versioned fingerprint
# (<cohort>@<generation>/<hash>); the second batch advances the
# generation, so the next job re-analyzes (no stale cache answer) and
# its cached entry supersedes generation 1 exactly once.
# Three clean clinical profiles, ten patients each: enough members per
# cluster for the optimizer's stratified CV at K in {2,3}.
ndjson_batch() {  # ndjson_batch FIRST_PATIENT COUNT
  python3 - "$1" "$2" <<'PYEOF'
import sys
first, count = int(sys.argv[1]), int(sys.argv[2])
groups = [["hba1c", "lipid"], ["fundus", "retina"],
          ["creatinine", "urine"]]
for p in range(first, first + count):
    exams = groups[p % 3] * 2
    for day, exam in enumerate(exams, start=1):
        print('{"patient": %d, "exam_type": "%s", "day": %d}'
              % (p, exam, day))
PYEOF
}

INGEST1_OUT="$(ndjson_batch 0 30 | client ingest --cohort smoke-ward)" \
  || fail "first ingest batch failed"
grep -q '^generation: 1$' <<<"${INGEST1_OUT}" \
  || fail "first ingest batch did not commit generation 1"
grep -q '^total_records: 120$' <<<"${INGEST1_OUT}" \
  || fail "first ingest batch record count off"

COHORT_ARGS=(submit --cohort smoke-ward --dataset-id smoke-ward \
    --candidate-ks 2,3 --cv-folds 3 --fast --wait)
GEN1_OUT="$(client "${COHORT_ARGS[@]}")" || fail "generation-1 job failed"
grep -q '^state: done$' <<<"${GEN1_OUT}" || fail "generation-1 job not done"
grep -q '^cache_hit: false$' <<<"${GEN1_OUT}" \
  || fail "generation-1 job unexpectedly served from cache"
grep -q '^fingerprint: smoke-ward@1/' <<<"${GEN1_OUT}" \
  || fail "generation-1 fingerprint not versioned as smoke-ward@1/..."

GEN1_REPEAT="$(client "${COHORT_ARGS[@]}")" \
  || fail "generation-1 repeat failed"
grep -q '^cache_hit: true$' <<<"${GEN1_REPEAT}" \
  || fail "generation-1 repeat missed the versioned-fingerprint cache"

INGEST2_OUT="$(ndjson_batch 30 6 | client ingest --cohort smoke-ward)" \
  || fail "second ingest batch failed"
grep -q '^generation: 2$' <<<"${INGEST2_OUT}" \
  || fail "second ingest batch did not advance to generation 2"
grep -q '^total_records: 144$' <<<"${INGEST2_OUT}" \
  || fail "second ingest batch accumulation off"

GEN2_OUT="$(client "${COHORT_ARGS[@]}")" || fail "generation-2 job failed"
grep -q '^state: done$' <<<"${GEN2_OUT}" || fail "generation-2 job not done"
grep -q '^cache_hit: false$' <<<"${GEN2_OUT}" \
  || fail "generation-2 job answered from a stale generation's cache"
grep -q '^fingerprint: smoke-ward@2/' <<<"${GEN2_OUT}" \
  || fail "generation-2 fingerprint not versioned as smoke-ward@2/..."

INGEST_STATS="$(client stats)" || fail "stats verb failed after ingest"
python3 - "${INGEST_STATS}" <<'EOF' || fail "ingest/supersede counters off"
import json, sys
stats = json.loads(sys.argv[1])
ingest = stats["ingest"]
bad = {}
for key, want in {"batches": 2, "records": 144, "cohorts": 1,
                  "generations": 2}.items():
    if ingest.get(key) != want:
        bad[f"ingest.{key}"] = (ingest.get(key), want)
# Generation 2's cached entry evicted generation 1's exactly once.
if stats["cache"]["superseded"] != 1:
    bad["cache.superseded"] = (stats["cache"]["superseded"], 1)
if bad:
    print(f"counter mismatches (got, want): {bad}", file=sys.stderr)
    sys.exit(1)
EOF

echo "== concurrent pipelined clients =="
# Six clients at once against the one event loop: four pipelined
# ping batches plus two submit --wait clients (identical to the cold
# job, so they are cache hits and leave the counters above untouched).
CONCURRENT_PIDS=()
for _ in 1 2 3 4; do
  client ping --count 25 >/dev/null &
  CONCURRENT_PIDS+=($!)
done
for _ in 1 2; do
  client submit --patients 100 --exam-types 20 --seed 7 \
      --dataset-id smoke-cold --fast --wait >/dev/null &
  CONCURRENT_PIDS+=($!)
done
for pid in "${CONCURRENT_PIDS[@]}"; do
  wait "${pid}" || fail "concurrent client (pid ${pid}) failed"
done

echo "== shutdown verb =="
client shutdown >/dev/null || fail "shutdown verb failed"
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  fail "server still running after shutdown verb"
fi
wait "${SERVER_PID}" 2>/dev/null
SERVER_CODE=$?
SERVER_PID=""
[[ "${SERVER_CODE}" -eq 0 ]] \
  || fail "server exited ${SERVER_CODE} after shutdown (want 0)"

echo "service_smoke: PASS"
