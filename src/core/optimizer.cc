#include "core/optimizer.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace core {

using common::Status;
using common::StatusOr;
using transform::Matrix;

namespace {

ml::ClassifierFactory MakeFactory(RobustnessModel model) {
  switch (model) {
    case RobustnessModel::kDecisionTree:
      return [] { return std::make_unique<ml::DecisionTreeClassifier>(); };
    case RobustnessModel::kNaiveBayes:
      return [] { return std::make_unique<ml::GaussianNaiveBayes>(); };
    case RobustnessModel::kNearestNeighbors:
      return [] { return std::make_unique<ml::KnnClassifier>(); };
    case RobustnessModel::kRandomForest:
      return [] { return std::make_unique<ml::RandomForestClassifier>(); };
  }
  return [] { return std::make_unique<ml::DecisionTreeClassifier>(); };
}

/// Phase A of one candidate K: the k-means restarts, keeping the
/// best-SSE run. `warm_source` (when non-null) is the best clustering
/// of the nearest previously-evaluated K; one extra run then starts
/// from its centroids adapted to this K — typically one or two drift
/// steps from a local optimum, so it converges in a handful of cheap
/// pruned passes. The k-means++ restarts are unchanged, so the
/// candidate's best SSE can only improve over a cold sweep.
StatusOr<cluster::Clustering> ClusterCandidate(
    const Matrix& data, const transform::CsrMatrix* sparse, int32_t k,
    const OptimizerOptions& options,
    const cluster::Clustering* warm_source) {
  // A triggered "optimizer.candidate" failpoint marks this candidate
  // skipped (the sweep's existing degradation path) without aborting
  // the sweep.
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("optimizer.candidate"));
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::ScopedTimer kmeans_timer(metrics, "optimizer/kmeans_seconds");

  cluster::KMeansOptions kmeans = options.kmeans;
  kmeans.k = k;
  // The sweep measured the density and converted once up front; pin
  // the representation so RunKMeans never repeats either per restart.
  kmeans.representation = sparse != nullptr
                              ? cluster::KMeansRepresentation::kSparse
                              : cluster::KMeansRepresentation::kDense;
  auto run = [&]() {
    return sparse != nullptr ? cluster::RunKMeans(*sparse, kmeans)
                             : cluster::RunKMeans(data, kmeans);
  };
  StatusOr<cluster::Clustering> best =
      common::InternalError("no restart succeeded");
  if (warm_source != nullptr) {
    kmeans.seed = options.seed + static_cast<uint64_t>(k) * 104729;
    kmeans.initial_centroids = cluster::AdaptCentroids(data, *warm_source, k);
    auto clustering = run();
    if (!clustering.ok()) return clustering.status();
    best = std::move(clustering);
    kmeans.initial_centroids = transform::Matrix();
    metrics.GetCounter("optimizer/warm_starts").Increment();
  }
  for (int32_t restart = 0; restart < options.restarts; ++restart) {
    kmeans.seed = options.seed + static_cast<uint64_t>(k) * 104729 +
                  static_cast<uint64_t>(restart) * 15485863;
    auto clustering = run();
    if (!clustering.ok()) return clustering.status();
    if (!best.ok() || clustering->sse < best->sse) {
      best = std::move(clustering);
    }
    metrics.GetCounter("optimizer/restarts").Increment();
  }
  return best;
}

/// Phase B of one candidate K: cross-validate a classifier that
/// re-predicts the cluster labels from the same features.
StatusOr<CandidateEvaluation> AssessCandidate(const Matrix& data,
                                              cluster::Clustering clustering,
                                              double cluster_seconds,
                                              const OptimizerOptions& options) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::WallTimer cv_timer;
  CandidateEvaluation evaluation;
  evaluation.k = clustering.k;
  evaluation.sse = clustering.sse;
  evaluation.clustering = std::move(clustering);

  auto report = ml::CrossValidate(
      data, evaluation.clustering.assignments, evaluation.k,
      options.cv_folds, options.seed + static_cast<uint64_t>(evaluation.k),
      MakeFactory(options.model));
  const double cv_seconds = cv_timer.ElapsedSeconds();
  metrics.GetHistogram("optimizer/cv_seconds").Record(cv_seconds);
  metrics.GetHistogram("optimizer/candidate_eval_seconds")
      .Record(cluster_seconds + cv_seconds);
  if (!report.ok()) return report.status();
  evaluation.accuracy = report->accuracy;
  evaluation.avg_precision = report->macro_precision;
  evaluation.avg_recall = report->macro_recall;
  evaluation.composite = (evaluation.accuracy + evaluation.avg_precision +
                          evaluation.avg_recall) /
                         3.0;
  return evaluation;
}

}  // namespace

StatusOr<OptimizerResult> OptimizeClustering(
    const Matrix& data, const OptimizerOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError("optimizer requires non-empty data");
  }
  if (options.candidate_ks.empty()) {
    return common::InvalidArgumentError("no candidate K values");
  }
  for (int32_t k : options.candidate_ks) {
    if (k < 2 || static_cast<size_t>(k) > data.rows()) {
      return common::InvalidArgumentError(
          "candidate K outside [2, number of points]");
    }
  }
  if (options.cv_folds < 2) {
    return common::InvalidArgumentError("cv_folds must be >= 2");
  }
  if (options.restarts < 1) {
    return common::InvalidArgumentError("restarts must be >= 1");
  }

  const size_t num_candidates = options.candidate_ks.size();
  std::vector<StatusOr<CandidateEvaluation>> evaluations(
      num_candidates, common::InternalError("not evaluated"));

  // Phase A — clustering, serial and in candidate order so each K can
  // warm-start from the best solution of the nearest K evaluated
  // before it (and so results never depend on the thread count). The
  // cores not used at this level feed the k-means engine's row-level
  // parallelism on ThreadPool::Shared() instead.
  std::vector<StatusOr<cluster::Clustering>> clusterings(
      num_candidates, common::InternalError("not clustered"));
  std::vector<double> cluster_seconds(num_candidates, 0.0);

  // Representation hoisting: measure the nnz density and convert to
  // CSR (when the options select it) once per sweep, instead of once
  // per restart inside RunKMeans. Every candidate run below then pins
  // the decided representation. Results are identical either way.
  transform::CsrMatrix sparse_data;
  // Probe with the largest candidate K: one conversion is amortized
  // over the whole sweep, so the small-k gate inside ShouldUseSparse
  // (which protects single runs) should not veto the hoist.
  cluster::KMeansOptions probe = options.kmeans;
  for (int32_t candidate_k : options.candidate_ks) {
    probe.k = std::max(probe.k, candidate_k);
  }
  const bool use_sparse = cluster::internal::ShouldUseSparse(data, probe);
  if (use_sparse) {
    sparse_data = transform::CsrMatrix::FromDense(data);
    common::MetricsRegistry::Default()
        .GetCounter("optimizer/sparse_sweeps")
        .Increment();
  }
  const transform::CsrMatrix* sparse = use_sparse ? &sparse_data : nullptr;

  // Cross-run warm start: adopt the caller-provided centroids (a prior
  // generation's solution) as the initial warm source. AdaptCentroids
  // needs assignments aligned with THIS data, so the hint is
  // re-assigned against it first — the persisted centroids may come
  // from an earlier snapshot of a growing cohort.
  cluster::Clustering warm_hint;
  const cluster::Clustering* warm_source = nullptr;
  if (!options.warm_centroids.empty() &&
      options.warm_centroids.cols() == data.cols() &&
      options.warm_centroids.rows() >= 1 &&
      options.warm_centroids.rows() <= data.rows()) {
    warm_hint.k = static_cast<int32_t>(options.warm_centroids.rows());
    warm_hint.centroids = options.warm_centroids;
    warm_hint.sse = cluster::AssignToCentroids(data, warm_hint.centroids,
                                               warm_hint.assignments);
    warm_source = &warm_hint;
    common::MetricsRegistry::Default()
        .GetCounter("optimizer/warm_seeded_sweeps")
        .Increment();
  }
  // Evaluation order: with a cross-run warm hint, the hint's K (its
  // centroid row count — the prior generation's selected K) is
  // evaluated first so every later candidate chains from an
  // already-good solution. The order lives HERE, keyed off
  // warm_centroids, rather than in the caller's candidate_ks:
  // candidate_ks is hashed in order by the service's options signature,
  // so reordering it would split the delta/cold fingerprint. Results
  // are stored at their canonical candidate_ks index either way, so
  // `candidates[i].k == candidate_ks[i]` and the report's row order
  // never depend on the hint.
  std::vector<size_t> eval_order(num_candidates);
  for (size_t i = 0; i < num_candidates; ++i) eval_order[i] = i;
  if (warm_source != nullptr) {
    for (size_t i = 0; i < num_candidates; ++i) {
      if (options.candidate_ks[i] == warm_hint.k) {
        std::rotate(eval_order.begin(), eval_order.begin() + i,
                    eval_order.begin() + i + 1);
        break;
      }
    }
  }
  common::WallTimer cluster_timer;
  for (size_t i : eval_order) {
    cluster_timer.Restart();
    clusterings[i] = ClusterCandidate(data, sparse, options.candidate_ks[i],
                                      options, warm_source);
    cluster_seconds[i] = cluster_timer.ElapsedSeconds();
    if (clusterings[i].ok()) warm_source = &*clusterings[i];
  }

  // Phase B — robustness assessment (classifier cross-validation) per
  // candidate, fanned out across options.num_threads. The former
  // design parallelized whole candidates, so a sweep could never use
  // more threads than candidates no matter how many cores were free;
  // now the clustering phase scales with the data instead.
  size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, num_candidates);
  auto assess = [&](size_t i) {
    if (!clusterings[i].ok()) {
      evaluations[i] = clusterings[i].status();
      return;
    }
    evaluations[i] =
        AssessCandidate(data, std::move(clusterings[i]).value(),
                        cluster_seconds[i], options);
  };
  if (num_threads <= 1) {
    for (size_t i = 0; i < num_candidates; ++i) assess(i);
  } else {
    common::ThreadPool pool(num_threads);
    common::ParallelFor(pool, 0, num_candidates, assess);
  }

  // A candidate whose evaluation fails (e.g. a cluster too small for
  // cv_folds-stratified CV) is recorded as skipped instead of failing
  // the whole sweep; the sweep errors only when nothing was evaluated.
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  OptimizerResult result;
  result.candidates.reserve(num_candidates);
  double best_composite = -1.0;
  size_t num_evaluated = 0;
  for (size_t i = 0; i < num_candidates; ++i) {
    CandidateEvaluation candidate;
    if (evaluations[i].ok()) {
      candidate = std::move(evaluations[i]).value();
      ++num_evaluated;
    } else {
      candidate.k = options.candidate_ks[i];
      candidate.status = evaluations[i].status();
      metrics.GetCounter("optimizer/candidates_skipped").Increment();
    }
    metrics.GetCounter("optimizer/candidates").Increment();
    result.candidates.push_back(std::move(candidate));
    if (result.candidates.back().status.ok() &&
        result.candidates.back().composite > best_composite) {
      best_composite = result.candidates.back().composite;
      result.best_index = i;
    }
  }
  if (num_evaluated == 0) {
    return common::FailedPreconditionError(
        "every candidate K failed; first error: " +
        result.candidates.front().status.ToString());
  }
  return result;
}

}  // namespace core
}  // namespace adahealth
