#include "stats/descriptors.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adahealth {
namespace stats {
namespace {

TEST(SummarizeTest, BasicMoments) {
  Summary summary = Summarize(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_DOUBLE_EQ(summary.variance, 1.25);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 4.0);
  EXPECT_DOUBLE_EQ(summary.median, 2.5);
  EXPECT_NEAR(summary.skewness, 0.0, 1e-12);
}

TEST(SummarizeTest, EmptyInput) {
  Summary summary = Summarize(std::vector<double>{});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  Summary summary = Summarize(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(summary.mean, 7.0);
  EXPECT_DOUBLE_EQ(summary.variance, 0.0);
  EXPECT_DOUBLE_EQ(summary.median, 7.0);
  EXPECT_DOUBLE_EQ(summary.skewness, 0.0);
}

TEST(SummarizeTest, SkewnessSign) {
  // Right-skewed sample.
  Summary right = Summarize(std::vector<double>{1, 1, 1, 1, 10});
  EXPECT_GT(right.skewness, 0.0);
  Summary left = Summarize(std::vector<double>{-10, 1, 1, 1, 1});
  EXPECT_LT(left.skewness, 0.0);
}

TEST(SummarizeTest, IntegerOverload) {
  Summary summary = Summarize(std::vector<int64_t>{2, 4, 6});
  EXPECT_DOUBLE_EQ(summary.mean, 4.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 17.5);
}

TEST(QuantileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(EntropyTest, UniformDistribution) {
  EXPECT_NEAR(Entropy({10, 10, 10, 10}), 2.0, 1e-12);
}

TEST(EntropyTest, DegenerateDistribution) {
  EXPECT_DOUBLE_EQ(Entropy({100, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
}

TEST(NormalizedEntropyTest, Bounds) {
  EXPECT_DOUBLE_EQ(NormalizedEntropy({5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEntropy({5}), 1.0);  // Fewer than 2 buckets.
  double skewed = NormalizedEntropy({100, 1, 1});
  EXPECT_GT(skewed, 0.0);
  EXPECT_LT(skewed, 1.0);
}

TEST(GiniTest, PerfectEquality) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniTest, FullConcentration) {
  // All mass on one bucket of n: Gini -> (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 100}), 0.75, 1e-12);
}

TEST(GiniTest, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(TopFractionCoverageTest, KnownValues) {
  std::vector<int64_t> counts{70, 20, 5, 5};
  EXPECT_DOUBLE_EQ(TopFractionCoverage(counts, 0.25), 0.70);
  EXPECT_DOUBLE_EQ(TopFractionCoverage(counts, 0.5), 0.90);
  EXPECT_DOUBLE_EQ(TopFractionCoverage(counts, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(TopFractionCoverage(counts, 0.0), 0.0);
}

TEST(TopFractionCoverageTest, UnsortedInput) {
  std::vector<int64_t> counts{5, 70, 5, 20};
  EXPECT_DOUBLE_EQ(TopFractionCoverage(counts, 0.25), 0.70);
}

TEST(BucketsForCoverageTest, KnownValues) {
  std::vector<int64_t> counts{70, 20, 5, 5};
  EXPECT_EQ(BucketsForCoverage(counts, 0.5), 1u);
  EXPECT_EQ(BucketsForCoverage(counts, 0.75), 2u);
  EXPECT_EQ(BucketsForCoverage(counts, 1.0), 4u);
  EXPECT_EQ(BucketsForCoverage(counts, 0.0), 0u);
}

TEST(PearsonCorrelationTest, PerfectCorrelations) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace adahealth
