// Client-side NDJSON protocol bindings: one connection, one or more
// request-response exchanges. The `ada_client` CLI (tools/) and the
// end-to-end tests are the two consumers.
#ifndef ADAHEALTH_SERVICE_CLIENT_H_
#define ADAHEALTH_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/net_socket.h"

namespace adahealth {
namespace service {

/// Connect-time resilience knobs (`ada_client --connect-retries`).
struct ConnectOptions {
  /// Additional attempts after the first connect fails with a
  /// retryable error (ECONNREFUSED surfaces as UNAVAILABLE) — the
  /// server may still be binding its port, or a router failover may be
  /// mid-promotion. 0 = single attempt, exactly the old behaviour.
  int retries = 0;
  /// Exponential backoff between attempts (common/retry.h semantics).
  double initial_backoff_millis = 25.0;
  double max_backoff_millis = 500.0;
};

/// A connected protocol client. Requests run sequentially on the one
/// connection (the protocol is strictly request-response).
class AnalysisClient {
 public:
  /// Connects to the server on 127.0.0.1:`port`. UNAVAILABLE when
  /// nothing listens there.
  [[nodiscard]] static common::StatusOr<AnalysisClient> Connect(uint16_t port);

  /// As above, retrying refused/unavailable connects with exponential
  /// backoff per `options`. Returns the final attempt's error when the
  /// budget is exhausted.
  [[nodiscard]] static common::StatusOr<AnalysisClient> Connect(
      uint16_t port, const ConnectOptions& options);

  /// Sends one request object (the "verb" field must be set) and
  /// returns the parsed success response. A server-side error response
  /// is surfaced as its reconstructed Status; transport failures are
  /// UNAVAILABLE (or OUT_OF_RANGE when the server hung up).
  [[nodiscard]] common::StatusOr<common::Json> Call(
      const common::Json::Object& request);

  /// Convenience wrapper: Call with just a verb.
  [[nodiscard]] common::StatusOr<common::Json> Call(const std::string& verb);

  /// Pipelines every request in one batch write, then reads the
  /// responses in order (the server answers pipelined lines strictly
  /// in sequence). Entry i is request i's parsed response or error; a
  /// transport failure fills the remaining entries with its status.
  [[nodiscard]] std::vector<common::StatusOr<common::Json>> CallPipelined(
      const std::vector<common::Json::Object>& requests);

 private:
  AnalysisClient() = default;

  // unique_ptr: LineReader holds a pointer to connection_, so the pair
  // must not be separated by a move of the client.
  std::unique_ptr<FileDescriptor> connection_;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_CLIENT_H_
