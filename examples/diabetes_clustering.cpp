// Domain example 1 — "discover groups of patients with similar
// clinical history" (analysis (i) of the paper's introduction).
//
// Builds the VSM of a diabetic cohort, lets the optimizer pick K,
// profiles each discovered patient group by its signature exams, and —
// because the cohort is synthetic — quantifies how well the groups
// recover the latent clinical profiles.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "cluster/quality.h"
#include "core/optimizer.h"
#include "dataset/synthetic_cohort.h"
#include "transform/vsm.h"

int main() {
  using namespace adahealth;

  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 2000;
  // A crisper cohort than the default benchmark one, so the group
  // profiles are easy to eyeball.
  config.patient_heterogeneity = 0.15;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }
  const dataset::ExamLog& log = cohort->log;
  std::printf("cohort: %zu patients, %zu exam types, %zu records\n\n",
              log.num_patients(), log.num_exam_types(), log.num_records());

  // TF-IDF + L2: de-emphasize routine panels so the exam *mix* (not
  // the visit volume) drives the grouping.
  transform::VsmOptions vsm_options{transform::VsmWeighting::kTfIdf,
                                    transform::VsmNormalization::kL2};
  transform::Matrix vsm = transform::BuildVsm(log, vsm_options);
  core::OptimizerOptions options;
  options.candidate_ks = {4, 6, 8, 10, 12};
  options.cv_folds = 10;
  auto optimized = core::OptimizeClustering(vsm, options);
  if (!optimized.ok()) {
    std::printf("optimizer failed: %s\n",
                optimized.status().ToString().c_str());
    return 1;
  }
  const cluster::Clustering& clustering = optimized->best().clustering;
  std::printf("optimizer selected K = %d (accuracy %.1f%%, avg precision "
              "%.1f%%, avg recall %.1f%%)\n\n",
              optimized->best_k(), 100.0 * optimized->best().accuracy,
              100.0 * optimized->best().avg_precision,
              100.0 * optimized->best().avg_recall);

  // Profile every cluster by its three heaviest centroid components.
  std::vector<int64_t> sizes =
      cluster::ClusterSizes(clustering.assignments, clustering.k);
  for (int32_t c = 0; c < clustering.k; ++c) {
    std::span<const double> centroid =
        clustering.centroids.Row(static_cast<size_t>(c));
    std::vector<size_t> order(centroid.size());
    std::iota(order.begin(), order.end(), 0u);
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](size_t a, size_t b) {
                        return centroid[a] > centroid[b];
                      });
    std::printf("group %d (%lld patients): ", c,
                static_cast<long long>(sizes[static_cast<size_t>(c)]));
    for (int i = 0; i < 3; ++i) {
      std::printf("%s%s (%.1f)", i > 0 ? ", " : "",
                  log.dictionary().Name(static_cast<int32_t>(order[
                      static_cast<size_t>(i)])).c_str(),
                  centroid[order[static_cast<size_t>(i)]]);
    }
    std::printf("\n");
  }

  // Recovery of the latent clinical profiles (available because the
  // cohort is synthetic): majority-profile purity per cluster.
  std::vector<int32_t> truth = log.ProfileLabels();
  double weighted_purity = 0.0;
  std::printf("\nlatent-profile recovery:\n");
  for (int32_t c = 0; c < clustering.k; ++c) {
    std::vector<int64_t> profile_counts(
        static_cast<size_t>(config.num_profiles), 0);
    int64_t members = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (clustering.assignments[i] != c) continue;
      ++profile_counts[static_cast<size_t>(truth[i])];
      ++members;
    }
    if (members == 0) continue;
    auto majority = std::max_element(profile_counts.begin(),
                                     profile_counts.end());
    double purity = static_cast<double>(*majority) /
                    static_cast<double>(members);
    weighted_purity += purity * static_cast<double>(members) /
                       static_cast<double>(truth.size());
    std::printf("  group %d: %.0f%% of members share profile '%s'\n", c,
                100.0 * purity,
                cohort->profile_names[static_cast<size_t>(
                                          majority -
                                          profile_counts.begin())]
                    .c_str());
  }
  std::printf("overall weighted purity: %.1f%%\n", 100.0 * weighted_purity);
  return 0;
}
