#include "cluster/quality.h"

#include <gtest/gtest.h>
#include "cluster/kmeans.h"
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using test::MakeBlobs;
using transform::Matrix;

TEST(SseTest, MatchesManualComputation) {
  Matrix points(3, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 2.0;
  points.At(2, 0) = 10.0;
  Matrix centroids(2, 1);
  centroids.At(0, 0) = 1.0;
  centroids.At(1, 0) = 10.0;
  std::vector<int32_t> assignments{0, 0, 1};
  EXPECT_DOUBLE_EQ(SumSquaredError(points, assignments, centroids), 2.0);
}

TEST(OverallSimilarityTest, ClosedFormMatchesExactPairwise) {
  // The O(N) closed form must equal the O(N^2) definition.
  test::Blobs blobs = MakeBlobs(
      {{1.0, 0.2}, {0.1, 1.5}, {2.0, 2.0}}, 15, 0.4, 33);
  KMeansOptions options;
  options.k = 3;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double fast = OverallSimilarity(blobs.points, clustering->assignments, 3);
  double exact =
      OverallSimilarityExact(blobs.points, clustering->assignments, 3);
  EXPECT_NEAR(fast, exact, 1e-9);
}

TEST(OverallSimilarityTest, PerfectCohesionIsOne) {
  // All members of each cluster are identical -> OS = 1.
  Matrix points(4, 2);
  points.At(0, 0) = 1.0;
  points.At(1, 0) = 1.0;
  points.At(2, 1) = 2.0;
  points.At(3, 1) = 2.0;
  std::vector<int32_t> assignments{0, 0, 1, 1};
  EXPECT_NEAR(OverallSimilarity(points, assignments, 2), 1.0, 1e-12);
}

TEST(OverallSimilarityTest, OrthogonalMembersLowerScore) {
  // One cluster holding two orthogonal unit vectors: cohesion = 0.5
  // (self-pairs only).
  Matrix points(2, 2);
  points.At(0, 0) = 1.0;
  points.At(1, 1) = 1.0;
  std::vector<int32_t> assignments{0, 0};
  EXPECT_NEAR(OverallSimilarity(points, assignments, 1), 0.5, 1e-12);
}

TEST(OverallSimilarityTest, TightClusteringScoresHigherThanRandom) {
  test::Blobs blobs = MakeBlobs(
      {{5.0, 0.0, 0.0}, {0.0, 5.0, 0.0}, {0.0, 0.0, 5.0}}, 30, 0.3, 35);
  KMeansOptions options;
  options.k = 3;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double good = OverallSimilarity(blobs.points, clustering->assignments, 3);
  // Random assignment.
  common::Rng rng(37);
  std::vector<int32_t> random(blobs.points.rows());
  for (auto& a : random) a = static_cast<int32_t>(rng.UniformUint64(3));
  double bad = OverallSimilarity(blobs.points, random, 3);
  EXPECT_GT(good, bad + 0.1);
}

TEST(OverallSimilarityTest, ZeroVectorsContributeNothing) {
  Matrix points(3, 2);
  points.At(0, 0) = 1.0;
  points.At(1, 0) = 1.0;
  // Row 2 is all zero.
  std::vector<int32_t> assignments{0, 0, 0};
  // Normalized sum = (2,0)/... cohesion = ||(2,0)||^2 / 9 = 4/9; the
  // exact pairwise version agrees because cos with zero vector is 0.
  double fast = OverallSimilarity(points, assignments, 1);
  double exact = OverallSimilarityExact(points, assignments, 1);
  EXPECT_NEAR(fast, exact, 1e-12);
}

TEST(SilhouetteTest, WellSeparatedNearOne) {
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {20.0, 0.0}}, 40, 0.5, 39);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double score = SilhouetteScore(blobs.points, clustering->assignments, 2);
  EXPECT_GT(score, 0.9);
}

TEST(SilhouetteTest, OverlappingClustersNearZero) {
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {0.5, 0.0}}, 40, 2.0, 41);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double score = SilhouetteScore(blobs.points, clustering->assignments, 2);
  EXPECT_LT(score, 0.5);
}

TEST(SilhouetteTest, SampledApproximationClose) {
  test::Blobs blobs = MakeBlobs({{0.0}, {10.0}}, 300, 0.8, 43);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double exact =
      SilhouetteScore(blobs.points, clustering->assignments, 2, 10000);
  double sampled =
      SilhouetteScore(blobs.points, clustering->assignments, 2, 150);
  EXPECT_NEAR(exact, sampled, 0.05);
}

TEST(DaviesBouldinTest, LowerForBetterSeparation) {
  test::Blobs tight = MakeBlobs({{0.0, 0.0}, {20.0, 0.0}}, 30, 0.5, 45);
  test::Blobs loose = MakeBlobs({{0.0, 0.0}, {3.0, 0.0}}, 30, 1.5, 45);
  KMeansOptions options;
  options.k = 2;
  auto tight_clustering = RunKMeans(tight.points, options);
  auto loose_clustering = RunKMeans(loose.points, options);
  ASSERT_TRUE(tight_clustering.ok());
  ASSERT_TRUE(loose_clustering.ok());
  EXPECT_LT(
      DaviesBouldinIndex(tight.points, tight_clustering->assignments, 2),
      DaviesBouldinIndex(loose.points, loose_clustering->assignments, 2));
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
