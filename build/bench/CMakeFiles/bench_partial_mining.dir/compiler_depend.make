# Empty compiler generated dependencies file for bench_partial_mining.
# This may be replaced when dependencies are built.
