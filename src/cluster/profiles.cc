#include "cluster/profiles.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace adahealth {
namespace cluster {

using common::StatusOr;
using transform::Matrix;

StatusOr<std::vector<ClusterProfile>> BuildClusterProfiles(
    const dataset::ExamLog& log, const Matrix& vsm,
    const Clustering& clustering, size_t top_k) {
  if (vsm.rows() != clustering.assignments.size()) {
    return common::InvalidArgumentError(
        "vsm rows and clustering assignments disagree");
  }
  if (vsm.cols() != log.num_exam_types()) {
    return common::InvalidArgumentError(
        "vsm columns and exam dictionary disagree");
  }
  if (clustering.k < 1) {
    return common::InvalidArgumentError("clustering has no clusters");
  }

  const size_t k = static_cast<size_t>(clustering.k);
  const size_t dims = vsm.cols();
  std::vector<double> global_mean = vsm.ColumnMeans();

  // Per-cluster mean weights and cosine cohesion accumulators.
  Matrix cluster_sums(k, dims, 0.0);
  Matrix normalized_sums(k, dims, 0.0);
  std::vector<int64_t> sizes(k, 0);
  for (size_t i = 0; i < vsm.rows(); ++i) {
    size_t c = static_cast<size_t>(clustering.assignments[i]);
    ++sizes[c];
    std::span<const double> row = vsm.Row(i);
    std::span<double> sum = cluster_sums.Row(c);
    for (size_t d = 0; d < dims; ++d) sum[d] += row[d];
    double norm = transform::Norm(row);
    if (norm > 0.0) {
      std::span<double> normalized = normalized_sums.Row(c);
      for (size_t d = 0; d < dims; ++d) normalized[d] += row[d] / norm;
    }
  }

  std::vector<ClusterProfile> profiles;
  profiles.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    ClusterProfile profile;
    profile.cluster = static_cast<int32_t>(c);
    profile.size = sizes[c];
    if (sizes[c] == 0) {
      profiles.push_back(std::move(profile));
      continue;
    }
    std::span<const double> normalized = normalized_sums.Row(c);
    double norm_squared = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      norm_squared += normalized[d] * normalized[d];
    }
    profile.cohesion = norm_squared / (static_cast<double>(sizes[c]) *
                                       static_cast<double>(sizes[c]));

    std::vector<SignatureExam> exams(dims);
    std::span<const double> sum = cluster_sums.Row(c);
    for (size_t d = 0; d < dims; ++d) {
      SignatureExam& exam = exams[d];
      exam.exam = static_cast<dataset::ExamTypeId>(d);
      exam.cluster_mean = sum[d] / static_cast<double>(sizes[c]);
      exam.global_mean = global_mean[d];
      exam.lift = exam.global_mean > 0.0
                      ? exam.cluster_mean / exam.global_mean
                      : 0.0;
    }

    std::vector<size_t> order(dims);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return exams[a].cluster_mean > exams[b].cluster_mean;
    });
    for (size_t r = 0; r < std::min(top_k, dims); ++r) {
      if (exams[order[r]].cluster_mean <= 0.0) break;
      profile.top_by_weight.push_back(exams[order[r]]);
    }

    // Lift ranking over exams with real presence in the cluster (at
    // least 10% of the cluster's strongest exam weight) so that noise
    // on near-absent exams cannot dominate.
    double presence_floor =
        profile.top_by_weight.empty()
            ? 0.0
            : 0.1 * profile.top_by_weight.front().cluster_mean;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return exams[a].lift > exams[b].lift;
    });
    for (size_t r = 0; r < dims && profile.top_by_lift.size() < top_k;
         ++r) {
      const SignatureExam& exam = exams[order[r]];
      if (exam.cluster_mean >= presence_floor && exam.lift > 0.0) {
        profile.top_by_lift.push_back(exam);
      }
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::string FormatClusterProfile(const ClusterProfile& profile,
                                 const dataset::ExamLog& log) {
  std::string out = common::StrFormat(
      "group %d: %lld patients, cohesion %.3f, distinctive:",
      profile.cluster, static_cast<long long>(profile.size),
      profile.cohesion);
  if (profile.top_by_lift.empty()) {
    out += " (none)";
    return out;
  }
  for (size_t i = 0; i < profile.top_by_lift.size(); ++i) {
    const SignatureExam& exam = profile.top_by_lift[i];
    out += common::StrFormat("%s %s (x%.1f)", i > 0 ? "," : "",
                             log.dictionary().Name(exam.exam).c_str(),
                             exam.lift);
  }
  return out;
}

}  // namespace cluster
}  // namespace adahealth
