#include "service/net_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Status;
using common::StatusOr;

namespace {

Status ErrnoError(const char* operation) {
  // strerror's static buffer is consumed immediately into the Status;
  // a concurrent strerror call can garble the text, never the code.
  return common::UnavailableError(common::StrFormat(
      "%s failed: %s", operation,
      std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
}

sockaddr_in LoopbackAddress(uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  return address;
}

}  // namespace

FileDescriptor::~FileDescriptor() { Close(); }

FileDescriptor::FileDescriptor(FileDescriptor&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FileDescriptor::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(const FileDescriptor& fd) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return ErrnoError("fcntl(F_GETFL)");
  if (::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoError("fcntl(F_SETFL)");
  }
  return common::OkStatus();
}

StatusOr<ServerSocket> ServerSocket::Listen(uint16_t port, int backlog) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoError("socket");
  int reuse = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse,
                   sizeof(reuse)) != 0) {
    return ErrnoError("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in address = LoopbackAddress(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoError("listen");
  // Recover the kernel-assigned port when the caller asked for 0.
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    return ErrnoError("getsockname");
  }
  ServerSocket server;
  server.fd_ = std::move(fd);
  server.port_ = ntohs(bound.sin_port);
  return server;
}

StatusOr<FileDescriptor> ServerSocket::Accept() const {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.accept"));
  for (;;) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return FileDescriptor(fd);
    if (errno == EINTR) continue;
    return ErrnoError("accept");
  }
}

StatusOr<FileDescriptor> ServerSocket::TryAccept() const {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.accept"));
  for (;;) {
    int fd = ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) return FileDescriptor(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return FileDescriptor();  // Nothing pending.
    }
    // Transient per-connection failures (the peer aborted between the
    // epoll wakeup and our accept) are "nothing usable pending", not a
    // listener error.
    if (errno == ECONNABORTED) return FileDescriptor();
    return ErrnoError("accept");
  }
}

void ServerSocket::Shutdown() const {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Status FinishConnect(const FileDescriptor& fd, int timeout_millis) {
  pollfd entry{};
  entry.fd = fd.get();
  entry.events = POLLOUT;
  for (;;) {
    int ready = ::poll(&entry, 1, timeout_millis);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Keep waiting; connect continues.
      return ErrnoError("poll");
    }
    if (ready == 0) {
      return common::DeadlineExceededError("connect timed out");
    }
    break;
  }
  int so_error = 0;
  socklen_t size = sizeof(so_error);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &size) != 0) {
    return ErrnoError("getsockopt(SO_ERROR)");
  }
  if (so_error != 0) {
    // Same static-buffer caveat as ErrnoError above.
    return common::UnavailableError(common::StrFormat(
        "connect failed: %s",
        std::strerror(so_error)));  // NOLINT(concurrency-mt-unsafe)
  }
  return common::OkStatus();
}

StatusOr<FileDescriptor> ConnectLoopback(uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoError("socket");
  sockaddr_in address = LoopbackAddress(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) == 0) {
    return fd;
  }
  // A connect() interrupted by a signal keeps completing in the
  // background: retrying it raw yields EALREADY while in flight and
  // EISCONN once done, neither of which is a failure. Finish the
  // handshake by waiting for writability and reading SO_ERROR.
  if (errno == EINTR || errno == EALREADY || errno == EINPROGRESS) {
    ADA_RETURN_IF_ERROR(FinishConnect(fd));
    return fd;
  }
  if (errno == EISCONN) return fd;  // Already established.
  return ErrnoError("connect");
}

void ShutdownConnection(const FileDescriptor& fd) {
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

Status SetRecvTimeout(const FileDescriptor& fd, double timeout_millis) {
  timeval timeout{};
  if (timeout_millis > 0) {
    timeout.tv_sec = static_cast<time_t>(timeout_millis / 1000.0);
    timeout.tv_usec = static_cast<suseconds_t>(
        (timeout_millis - 1e3 * static_cast<double>(timeout.tv_sec)) * 1e3);
    // A sub-microsecond request still arms a minimal timeout instead
    // of the {0,0} "block forever" sentinel.
    if (timeout.tv_sec == 0 && timeout.tv_usec == 0) timeout.tv_usec = 1;
  }
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout)) != 0) {
    return ErrnoError("setsockopt(SO_RCVTIMEO)");
  }
  return common::OkStatus();
}

Status SendAll(const FileDescriptor& fd, std::string_view data) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.write"));
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd.get(), data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return common::OkStatus();
}

StatusOr<size_t> SendNonBlocking(const FileDescriptor& fd,
                                 std::string_view data) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.write"));
  for (;;) {
    ssize_t n = ::send(fd.get(), data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return size_t{0};  // Socket buffer full; resume on writability.
    }
    return ErrnoError("send");
  }
}

StatusOr<RecvResult> RecvNonBlocking(const FileDescriptor& fd, char* buffer,
                                     size_t capacity) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.read"));
  RecvResult result;
  for (;;) {
    ssize_t n = ::recv(fd.get(), buffer, capacity, 0);
    if (n > 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.eof = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    return ErrnoError("recv");
  }
}

StatusOr<std::string> LineReader::ReadLine() {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      if (!buffer_.empty()) {  // Final line without a terminator.
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return common::OutOfRangeError("end of stream");
    }
    // A peer streaming bytes with no newline must not grow the buffer
    // without bound.
    if (buffer_.size() >= max_line_bytes_) {
      return common::ResourceExhaustedError(common::StrFormat(
          "line exceeds %zu bytes without a newline", max_line_bytes_));
    }
    ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.read"));
    char chunk[4096];
    ssize_t n = ::recv(fd_->get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace service
}  // namespace adahealth
