#include "transform/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

// The AVX2+FMA kernels are compiled behind function-level target
// attributes so the rest of this TU (and the whole tree) keeps the
// portable baseline ISA; only the annotated functions may emit VEX
// encodings, and they are only ever called after a cpuid check.
#if !defined(ADA_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ADA_SIMD_X86 1
#include <immintrin.h>
#else
#define ADA_SIMD_X86 0
#endif

namespace adahealth {
namespace transform {
namespace simd {

namespace {

// --- Scalar baseline ----------------------------------------------------
//
// Four independent accumulators, mirroring the hand-unrolled loop the
// dense kernels used before this TU existed: breaks the sequential add
// chain for pipelining while keeping a fixed combine order.

double DotScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void AxpyScalar(double a, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

#if ADA_SIMD_X86

// --- AVX2 + FMA ---------------------------------------------------------
//
// Four 256-bit accumulators (16 doubles in flight) hide the FMA
// latency; the horizontal reduction order is fixed, so the kernel is
// deterministic for a given input and ISA. The reassociation versus
// the scalar kernel is covered by FusedRelativeError's envelope.

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  acc0 = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                       _mm256_add_pd(acc2, acc3));
  __m128d lo = _mm256_castpd256_pd128(acc0);
  __m128d hi = _mm256_extractf128_pd(acc0, 1);
  lo = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(double a, const double* x,
                                                  double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else  // !ADA_SIMD_X86

bool CpuHasAvx2Fma() { return false; }

#endif  // ADA_SIMD_X86

/// True when ADA_SIMD_DISPATCH asks for the scalar path. Read once:
/// the dispatch decision must not change mid-process or two calls with
/// identical inputs could return different bits.
bool ScalarForcedByEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): resolved once under the
  // dispatch-init guard below, before the value is ever published.
  const char* env = std::getenv("ADA_SIMD_DISPATCH");
  return env != nullptr && std::strcmp(env, "scalar") == 0;
}

IsaLevel ResolveIsa() {
  if (!CpuHasAvx2Fma()) return IsaLevel::kScalar;
  if (ScalarForcedByEnv()) return IsaLevel::kScalar;
  return IsaLevel::kAvx2Fma;
}

/// Process-wide dispatch decision, resolved on first use. The testing
/// override narrows it without touching the cached resolution.
std::atomic<int> g_test_override{-1};

IsaLevel DispatchedIsa() {
  static const IsaLevel resolved = ResolveIsa();
  const int pinned = g_test_override.load(std::memory_order_acquire);
  if (pinned < 0) return resolved;
  IsaLevel wanted = static_cast<IsaLevel>(pinned);
  if (wanted == IsaLevel::kAvx2Fma && !CpuHasAvx2Fma()) {
    return IsaLevel::kScalar;
  }
  return wanted;
}

}  // namespace

IsaLevel ActiveIsa() { return DispatchedIsa(); }

const char* IsaName(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2Fma:
      return "avx2+fma";
  }
  return "?";
}

double DotProduct(std::span<const double> a, std::span<const double> b) {
  ADA_CHECK_EQ(a.size(), b.size());
#if ADA_SIMD_X86
  if (DispatchedIsa() == IsaLevel::kAvx2Fma) {
    return DotAvx2(a.data(), b.data(), a.size());
  }
#endif
  return DotScalar(a.data(), b.data(), a.size());
}

double SquaredNorm(std::span<const double> v) { return DotProduct(v, v); }

void Axpy(double a, std::span<const double> x, std::span<double> y) {
  ADA_CHECK_EQ(x.size(), y.size());
#if ADA_SIMD_X86
  if (DispatchedIsa() == IsaLevel::kAvx2Fma) {
    AxpyAvx2(a, x.data(), y.data(), y.size());
    return;
  }
#endif
  AxpyScalar(a, x.data(), y.data(), y.size());
}

namespace internal {

void SetIsaForTesting(IsaLevel isa) {
  g_test_override.store(static_cast<int>(isa), std::memory_order_release);
}

void ResetIsaForTesting() {
  g_test_override.store(-1, std::memory_order_release);
}

bool Avx2Available() { return CpuHasAvx2Fma(); }

}  // namespace internal

}  // namespace simd
}  // namespace transform
}  // namespace adahealth
