// Abstract classifier interface shared by the decision tree and naive
// Bayes models; lets the cluster-robustness assessor and the end-goal
// engine swap models (ablation A3 in DESIGN.md).
#ifndef ADAHEALTH_ML_CLASSIFIER_H_
#define ADAHEALTH_ML_CLASSIFIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "transform/matrix.h"

namespace adahealth {
namespace ml {

/// Supervised multi-class classifier over dense feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on rows of `features` with labels in [0, num_classes).
  /// Returns INVALID_ARGUMENT on shape/label errors. May be called
  /// again to retrain from scratch.
  [[nodiscard]] virtual common::Status Fit(
      const transform::Matrix& features, const std::vector<int32_t>& labels,
      int32_t num_classes) = 0;

  /// Predicts the label of one feature vector. Requires a prior
  /// successful Fit with matching dimensionality.
  virtual int32_t Predict(std::span<const double> features) const = 0;

  /// Predicts labels for every row.
  std::vector<int32_t> PredictBatch(const transform::Matrix& features) const {
    std::vector<int32_t> labels(features.rows());
    for (size_t i = 0; i < features.rows(); ++i) {
      labels[i] = Predict(features.Row(i));
    }
    return labels;
  }
};

/// Factory producing fresh untrained classifiers (one per CV fold).
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_CLASSIFIER_H_
