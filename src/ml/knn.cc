#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace adahealth {
namespace ml {

using common::Status;
using transform::Matrix;

Status KnnClassifier::Fit(const Matrix& features,
                          const std::vector<int32_t>& labels,
                          int32_t num_classes) {
  if (features.rows() == 0 || features.cols() == 0) {
    return common::InvalidArgumentError("empty training data");
  }
  if (labels.size() != features.rows()) {
    return common::InvalidArgumentError("label count != sample count");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }
  for (int32_t label : labels) {
    if (label < 0 || label >= num_classes) {
      return common::InvalidArgumentError("label outside [0, num_classes)");
    }
  }
  if (options_.k < 1) {
    return common::InvalidArgumentError("k must be >= 1");
  }
  num_classes_ = num_classes;
  train_features_ = features;
  train_labels_ = labels;
  return common::OkStatus();
}

int32_t KnnClassifier::Predict(std::span<const double> features) const {
  ADA_CHECK_GT(num_classes_, 0);
  ADA_CHECK_EQ(features.size(), train_features_.cols());
  const size_t n = train_features_.rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(options_.k), n);

  std::vector<std::pair<double, int32_t>> neighbours(n);
  for (size_t i = 0; i < n; ++i) {
    neighbours[i] = {transform::SquaredDistance(features,
                                                train_features_.Row(i)),
                     train_labels_[i]};
  }
  std::nth_element(neighbours.begin(),
                   neighbours.begin() + static_cast<ptrdiff_t>(k - 1),
                   neighbours.end());
  std::vector<int64_t> votes(static_cast<size_t>(num_classes_), 0);
  for (size_t i = 0; i < k; ++i) {
    ++votes[static_cast<size_t>(neighbours[i].second)];
  }
  int32_t best = 0;
  for (int32_t c = 1; c < num_classes_; ++c) {
    if (votes[static_cast<size_t>(c)] > votes[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

}  // namespace ml
}  // namespace adahealth
