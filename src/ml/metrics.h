// Classification quality metrics: accuracy, per-class and macro
// precision/recall/F1, confusion matrix. These are the paper's cluster
// robustness measures ("different quality metrics (such as accuracy,
// precision, recall)", §IV-A; Table I reports accuracy, average
// precision and average recall).
#ifndef ADAHEALTH_ML_METRICS_H_
#define ADAHEALTH_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace ml {

/// Aggregated classification metrics.
struct ClassificationReport {
  int32_t num_classes = 0;
  int64_t num_samples = 0;
  double accuracy = 0.0;
  /// Per-class one-vs-rest metrics; 0 when the denominator is empty.
  std::vector<double> precision;
  std::vector<double> recall;
  std::vector<double> f1;
  /// Unweighted means over classes (the paper's "average precision" /
  /// "average recall").
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  /// confusion[truth][prediction].
  std::vector<std::vector<int64_t>> confusion;
};

/// Computes the report for predictions vs ground truth. Labels must be
/// in [0, num_classes); sizes must match and be non-zero.
[[nodiscard]] common::StatusOr<ClassificationReport> EvaluateClassification(
    const std::vector<int32_t>& truth, const std::vector<int32_t>& predicted,
    int32_t num_classes);

/// Gini impurity of a class-count vector: 1 - sum p_c^2 (0 when empty).
double GiniImpurity(const std::vector<int64_t>& class_counts);

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_METRICS_H_
