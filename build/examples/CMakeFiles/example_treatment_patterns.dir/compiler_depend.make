# Empty compiler generated dependencies file for example_treatment_patterns.
# This may be replaced when dependencies are built.
