// Single-threaded epoll event loop for the analysis service.
//
// One thread calls Run() and becomes the *loop thread*; everything the
// loop dispatches — fd readiness callbacks, timers, posted tasks — runs
// on that thread, so loop-owned state (the server's connection table)
// needs no locking. Other threads interact with the loop exclusively
// through Post(), which enqueues a task and wakes the loop via an
// eventfd; this is how scheduler worker threads deliver job-completion
// notifications back into connection handling.
//
// The loop is level-triggered: callbacks drain their fd until EAGAIN
// but missing a byte only delays it to the next wakeup, never loses it.
#ifndef ADAHEALTH_SERVICE_EVENT_LOOP_H_
#define ADAHEALTH_SERVICE_EVENT_LOOP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "service/net_socket.h"

namespace adahealth {
namespace service {

class EventLoop {
 public:
  /// Called with the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...)
  /// when the watched fd becomes ready.
  using IoCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;
  using TimerId = int64_t;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must be called
  /// (and succeed) before any other method.
  [[nodiscard]] common::Status Init();

  /// Registers (or re-registers) `fd` for `events`; `callback` fires on
  /// readiness. Loop thread only once Run() has started.
  [[nodiscard]] common::Status Watch(int fd, uint32_t events,
                                     IoCallback callback);

  /// Changes the event mask of an already-watched fd.
  [[nodiscard]] common::Status SetInterest(int fd, uint32_t events);

  /// Stops watching `fd`. Safe to call from inside the fd's own
  /// callback; any events already harvested for it this iteration are
  /// dropped. The fd must still be open when this is called.
  void Unwatch(int fd);

  /// Runs `task` after `delay_millis` on the loop thread. Loop thread
  /// only. Timers are one-shot.
  TimerId ScheduleAfter(double delay_millis, Task task);

  /// Cancels a pending timer. Returns false when the timer already
  /// fired or never existed. Loop thread only.
  bool CancelTimer(TimerId id);

  /// Enqueues `task` to run on the loop thread. Thread-safe; the only
  /// entry point for other threads. Tasks posted after the loop has
  /// exited are silently dropped — the server relies on this when
  /// scheduler workers finish jobs during teardown.
  void Post(Task task) ADA_EXCLUDES(posted_mutex_);

  /// Dispatches events until Quit(). Blocks; call from the designated
  /// loop thread.
  void Run();

  /// Makes Run() return once the current iteration finishes. Loop
  /// thread only; from another thread use `Post([&]{ loop.Quit(); })`.
  void Quit() { quit_ = true; }

 private:
  void DrainPosted() ADA_EXCLUDES(posted_mutex_);
  void FirePendingTimers();
  /// Milliseconds until the earliest timer (-1 = no timers, wait
  /// indefinitely), clamped to >= 0.
  int NextTimerTimeout() const;

  using Clock = std::chrono::steady_clock;

  FileDescriptor epoll_fd_;
  FileDescriptor wakeup_fd_;

  // fd -> callback; shared_ptr lets a callback Unwatch itself while the
  // dispatch loop still holds a reference to the running callable.
  std::map<int, std::shared_ptr<IoCallback>> callbacks_;

  struct Timer {
    Clock::time_point due;
    Task task;
  };
  std::map<TimerId, Timer> timers_;
  std::multimap<Clock::time_point, TimerId> timer_order_;
  TimerId next_timer_id_ = 1;

  common::Mutex posted_mutex_;
  std::vector<Task> posted_ ADA_GUARDED_BY(posted_mutex_);
  /// Once set, Post() drops tasks instead of queueing into a dead loop.
  bool loop_exited_ ADA_GUARDED_BY(posted_mutex_) = false;

  bool quit_ = false;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_EVENT_LOOP_H_
