file(REMOVE_RECURSE
  "CMakeFiles/bench_kdb.dir/bench_kdb.cc.o"
  "CMakeFiles/bench_kdb.dir/bench_kdb.cc.o.d"
  "bench_kdb"
  "bench_kdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
