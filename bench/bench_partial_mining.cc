// Reproduces the in-text partial-mining experiment of §IV-B:
//
//  * Three incremental runs over the top 20%, 40% and 100% of exam
//    types (by descending raw frequency) cover ~70%, ~85% and 100% of
//    the raw records;
//  * overall similarity on the 85%-of-records subset is within 5% of
//    the full dataset "regardless of the number of clusters";
//  * for a fixed number of clusters, overall similarity decreases as
//    the number of exams is reduced;
//  * ADA-HEALTH therefore selects the 85% subset (the paper's 5% rule).
#include <cstdio>

#include "common/timer.h"
#include "core/partial_mining.h"
#include "dataset/synthetic_cohort.h"
#include "stats/correlations.h"

namespace {

using namespace adahealth;

int Run() {
  common::WallTimer timer;
  std::printf("=== Partial mining (paper $IV-B in-text experiment) ===\n");

  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::PaperScaleConfig())
          .Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed: %s\n",
                cohort.status().ToString().c_str());
    return 1;
  }

  core::PartialMiningOptions options;
  options.fractions = {0.2, 0.4, 1.0};
  options.ks = {6, 8, 10, 12};
  options.tolerance = 0.05;  // The paper's 5% rule.
  // TF-IDF + L2: the VSM weighting suited to cosine-based cohesion
  // (ubiquitous routine panels carry no grouping information), per the
  // paper's reference [4].
  options.vsm = {transform::VsmWeighting::kTfIdf,
                 transform::VsmNormalization::kL2};
  options.kmeans.seed = 20160516;
  auto result = core::RunExamSubsetPartialMining(cohort->log, options);
  if (!result.ok()) {
    std::printf("partial mining failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-12s %-14s", "exam types", "record cover");
  for (int32_t k : result->ks) std::printf(" OS(K=%-3d)", k);
  std::printf(" %-10s\n", "diff vs full");
  for (size_t s = 0; s < result->steps.size(); ++s) {
    const core::PartialMiningStep& step = result->steps[s];
    std::printf("%10.0f%% %13.1f%%", 100.0 * step.fraction,
                100.0 * step.record_coverage);
    for (double similarity : step.overall_similarity) {
      std::printf(" %9.4f", similarity);
    }
    std::printf(" %9.2f%%%s\n", 100.0 * step.mean_relative_diff,
                s == result->selected_step ? "   <== selected" : "");
  }

  const core::PartialMiningStep& selected =
      result->steps[result->selected_step];
  std::printf("\nADA-HEALTH selects the subset with %.0f%% of exam types "
              "(%.0f%% of records): quality difference %.2f%% < %.0f%%\n",
              100.0 * selected.fraction, 100.0 * selected.record_coverage,
              100.0 * selected.mean_relative_diff,
              100.0 * options.tolerance);
  std::printf("paper reference: 20/40/100%% of exam types ~= 70/85/100%% "
              "of rows; the 85%%-row subset is within 5%% and is "
              "selected\n");

  // Secondary observation from the paper: for fixed K, similarity
  // decreases as exams are removed.
  std::printf("\nfixed-K monotonicity (similarity, step 20%% vs 100%%):\n");
  for (size_t ki = 0; ki < result->ks.size(); ++ki) {
    std::printf("  K=%-3d  %.4f -> %.4f (%s)\n", result->ks[ki],
                result->steps.front().overall_similarity[ki],
                result->steps.back().overall_similarity[ki],
                result->steps.front().overall_similarity[ki] <=
                        result->steps.back().overall_similarity[ki]
                    ? "decreases with fewer exams, as in the paper"
                    : "increases (differs from the paper)");
  }
  // The paper's explanation for why the reduced subset suffices:
  // "some examination types are probably correlated (e.g. they could
  // be prescribed in conjunction...)". Show the strongest pairs.
  auto correlations =
      stats::TopExamCorrelations(cohort->log, 5, /*min_patients=*/200);
  if (correlations.ok()) {
    std::printf("\nmost correlated exam pairs (the paper's explanation "
                "for subset sufficiency):\n");
    for (const auto& pair : correlations.value()) {
      std::printf("  %-28s ~ %-28s r=%.3f\n",
                  cohort->log.dictionary().Name(pair.exam_a).c_str(),
                  cohort->log.dictionary().Name(pair.exam_b).c_str(),
                  pair.correlation);
    }
  }
  std::printf("[partial_mining] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
