#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace adahealth {
namespace common {

namespace {

/// Recursive-descent JSON parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    SkipWhitespace();
    StatusOr<Json> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        return Error("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<Json> ParseString() {
    StatusOr<std::string> raw = ParseRawString();
    if (!raw.ok()) return raw.status();
    return Json(std::move(raw).value());
  }

  StatusOr<std::string> ParseRawString() {
    ADA_CHECK_EQ(text_[pos_], '"');
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("truncated escape");
        char e = text_[pos_];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            uint32_t code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            pos_ += 4;
            AppendUtf8(code, out);
            break;
          }
          default:
            return Error("invalid escape character");
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  static void AppendUtf8(uint32_t code, std::string& out) {
    // Surrogate pairs are stored as-is code points; adequate for the BMP
    // usage in this project.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("malformed number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        return Json(static_cast<int64_t>(value));
      }
      // Fall through to double for out-of-range integers.
    }
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Json(value);
  }

  StatusOr<Json> ParseArray(int depth) {
    ADA_CHECK_EQ(text_[pos_], '[');
    ++pos_;
    Json::Array items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      StatusOr<Json> item = ParseValue(depth + 1);
      if (!item.ok()) return item;
      items.push_back(std::move(item).value());
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
      } else if (text_[pos_] == ']') {
        ++pos_;
        return Json(std::move(items));
      } else {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    ADA_CHECK_EQ(text_[pos_], '{');
    ++pos_;
    Json::Object fields;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Json(std::move(fields));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      StatusOr<std::string> key = ParseRawString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      StatusOr<Json> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      fields[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
      } else if (text_[pos_] == '}') {
        ++pos_;
        return Json(std::move(fields));
      } else {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEscaped(const std::string& text, std::string& out) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendDouble(double value, std::string& out) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; store null like most encoders do.
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

bool Json::AsBool() const {
  ADA_CHECK(is_bool());
  return std::get<bool>(value_);
}

int64_t Json::AsInt() const {
  ADA_CHECK(is_int());
  return std::get<int64_t>(value_);
}

double Json::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
  ADA_CHECK(is_double());
  return std::get<double>(value_);
}

const std::string& Json::AsString() const {
  ADA_CHECK(is_string());
  return std::get<std::string>(value_);
}

const Json::Array& Json::AsArray() const {
  ADA_CHECK(is_array());
  return std::get<Array>(value_);
}

Json::Array& Json::MutableArray() {
  ADA_CHECK(is_array());
  return std::get<Array>(value_);
}

const Json::Object& Json::AsObject() const {
  ADA_CHECK(is_object());
  return std::get<Object>(value_);
}

Json::Object& Json::MutableObject() {
  ADA_CHECK(is_object());
  return std::get<Object>(value_);
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& object = std::get<Object>(value_);
  auto it = object.find(std::string(key));
  if (it == object.end()) return nullptr;
  return &it->second;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int level) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent * level), ' ');
    }
  };
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(std::get<int64_t>(value_));
      break;
    case Type::kDouble:
      AppendDouble(std::get<double>(value_), out);
      break;
    case Type::kString:
      AppendEscaped(std::get<std::string>(value_), out);
      break;
    case Type::kArray: {
      const Array& items = std::get<Array>(value_);
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        items[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& fields = std::get<Object>(value_);
      if (fields.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : fields) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(key, out);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(out, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace common
}  // namespace adahealth
