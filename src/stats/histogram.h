// Fixed-width histogram used in dataset characterization reports.
#ifndef ADAHEALTH_STATS_HISTOGRAM_H_
#define ADAHEALTH_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adahealth {
namespace stats {

/// Equal-width histogram over [lo, hi]; values outside the range clamp
/// into the first/last bucket.
class Histogram {
 public:
  /// Creates `num_buckets` (>= 1) buckets spanning [lo, hi], lo < hi.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t num_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t bucket) const;
  int64_t total() const { return total_; }

  /// Inclusive-exclusive bounds of a bucket (the last is inclusive).
  double BucketLow(size_t bucket) const;
  double BucketHigh(size_t bucket) const;

  /// Renders an ASCII bar chart, one bucket per line.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace stats
}  // namespace adahealth

#endif  // ADAHEALTH_STATS_HISTOGRAM_H_
