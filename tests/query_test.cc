#include "kdb/query.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

Document MakeDocument() {
  auto document = Document::Parse(R"({
    "kind": "cluster",
    "quality": 0.8,
    "size": 120,
    "flags": {"selected": true},
    "interest": "high"
  })");
  EXPECT_TRUE(document.ok());
  return document.value();
}

TEST(QueryTest, EmptyQueryMatchesEverything) {
  EXPECT_TRUE(Query::All().Matches(MakeDocument()));
  EXPECT_TRUE(Query::All().Matches(Document()));
}

TEST(QueryTest, EqOnStringsAndNumbers) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query().Eq("kind", Json("cluster")).Matches(document));
  EXPECT_FALSE(Query().Eq("kind", Json("rule")).Matches(document));
  EXPECT_TRUE(Query().Eq("size", Json(int64_t{120})).Matches(document));
  // Numeric equality across int/double representations.
  EXPECT_TRUE(Query().Eq("size", Json(120.0)).Matches(document));
  EXPECT_TRUE(Query().Eq("quality", Json(0.8)).Matches(document));
}

TEST(QueryTest, EqOnMissingFieldFails) {
  EXPECT_FALSE(Query().Eq("absent", Json(1)).Matches(MakeDocument()));
}

TEST(QueryTest, NeMatchesMissingField) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query()
                  .Where("absent", QueryOp::kNe, Json(1))
                  .Matches(document));
  EXPECT_TRUE(Query()
                  .Where("kind", QueryOp::kNe, Json("rule"))
                  .Matches(document));
  EXPECT_FALSE(Query()
                   .Where("kind", QueryOp::kNe, Json("cluster"))
                   .Matches(document));
}

TEST(QueryTest, OrderingOperatorsOnNumbers) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query()
                  .Where("quality", QueryOp::kGt, Json(0.5))
                  .Matches(document));
  EXPECT_FALSE(Query()
                   .Where("quality", QueryOp::kGt, Json(0.8))
                   .Matches(document));
  EXPECT_TRUE(Query()
                  .Where("quality", QueryOp::kGe, Json(0.8))
                  .Matches(document));
  EXPECT_TRUE(Query()
                  .Where("size", QueryOp::kLt, Json(int64_t{200}))
                  .Matches(document));
  EXPECT_TRUE(Query()
                  .Where("size", QueryOp::kLe, Json(120.0))
                  .Matches(document));
}

TEST(QueryTest, OrderingOnStringsIsLexicographic) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query()
                  .Where("kind", QueryOp::kLt, Json("zebra"))
                  .Matches(document));
  EXPECT_FALSE(Query()
                   .Where("kind", QueryOp::kLt, Json("alpha"))
                   .Matches(document));
}

TEST(QueryTest, OrderingOnMismatchedTypesNeverMatches) {
  Document document = MakeDocument();
  EXPECT_FALSE(Query()
                   .Where("kind", QueryOp::kGt, Json(1))
                   .Matches(document));
  EXPECT_FALSE(Query()
                   .Where("flags", QueryOp::kLt, Json(1))
                   .Matches(document));
}

TEST(QueryTest, ExistsChecksPresence) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query().Exists("flags.selected").Matches(document));
  EXPECT_FALSE(Query().Exists("flags.missing").Matches(document));
}

TEST(QueryTest, DottedPathConditions) {
  Document document = MakeDocument();
  EXPECT_TRUE(
      Query().Eq("flags.selected", Json(true)).Matches(document));
}

TEST(QueryTest, ConjunctionSemantics) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query()
                  .Eq("kind", Json("cluster"))
                  .Where("quality", QueryOp::kGe, Json(0.5))
                  .Matches(document));
  EXPECT_FALSE(Query()
                   .Eq("kind", Json("cluster"))
                   .Where("quality", QueryOp::kGe, Json(0.9))
                   .Matches(document));
}

TEST(QueryTest, BooleanComparison) {
  Document document = MakeDocument();
  EXPECT_TRUE(Query()
                  .Where("flags.selected", QueryOp::kGe, Json(true))
                  .Matches(document));
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
