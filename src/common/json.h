// JSON value model, parser and serializer.
//
// This is the storage format of the K-DB document store (JSON-lines
// persistence) and the wire format of `kdb::Document`. The value model
// distinguishes integers from doubles so that counters survive
// round-trips exactly.
#ifndef ADAHEALTH_COMMON_JSON_H_
#define ADAHEALTH_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace common {

/// A JSON value: null, bool, int64, double, string, array or object.
/// Copyable; arrays/objects copy deeply.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys sorted, giving canonical serialization.
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(int value) : value_(static_cast<int64_t>(value)) {}
  Json(int64_t value) : value_(value) {}
  Json(double value) : value_(value) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(Array value) : value_(std::move(value)) {}
  Json(Object value) : value_(std::move(value)) {}

  /// Parses a JSON document. Accepts exactly one top-level value with
  /// optional surrounding whitespace.
  [[nodiscard]] static StatusOr<Json> Parse(std::string_view text);

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; ADA_CHECK on type mismatch (programmer error).
  bool AsBool() const;
  int64_t AsInt() const;
  /// Returns the numeric value as double (works for both int and double).
  double AsDouble() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& MutableArray();
  const Object& AsObject() const;
  Object& MutableObject();

  /// Object field lookup; returns nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Serializes to compact JSON (no insignificant whitespace).
  std::string Dump() const;

  /// Serializes with 2-space indentation for human inspection.
  std::string Pretty() const;

  /// Deep structural equality. Int and double compare unequal even when
  /// numerically identical (types are part of the value).
  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_JSON_H_
