// Runtime-dispatched SIMD kernels for the dense distance hot path.
//
// This is the only translation unit in the tree allowed to touch
// <immintrin.h> (enforced by the ada_lint `simd-intrinsics` rule). The
// public entry points dispatch once, at first use, between a scalar
// implementation (always compiled, the portable baseline) and an
// AVX2+FMA implementation (compiled behind function-level target
// attributes, taken only when __builtin_cpu_supports says the CPU has
// both). Build with -DADA_SIMD=OFF to compile the scalar path alone;
// set ADA_SIMD_DISPATCH=scalar in the environment to force the scalar
// path at runtime on AVX2 hardware (CI runs the whole k-means suite
// both ways).
//
// Contract: every kernel here is *error-bounded*, not bit-exact. A
// SIMD sum reassociates the scalar reduction, so results may differ
// from the scalar kernel by up to the caller-visible rounding envelope
// (transform::FusedRelativeError for the fused distance form). Exact
// consumers — the bit-identity contract between the k-means engines —
// must keep using transform::SquaredDistance, which never routes
// through this header. Within one process the dispatch decision is
// made once, so repeated calls with the same inputs return the same
// bits (deterministic per machine, not across ISAs).
#ifndef ADAHEALTH_TRANSFORM_SIMD_KERNELS_H_
#define ADAHEALTH_TRANSFORM_SIMD_KERNELS_H_

#include <cstddef>
#include <span>

namespace adahealth {
namespace transform {
namespace simd {

/// Instruction set actually selected by the runtime dispatcher.
enum class IsaLevel {
  kScalar,
  kAvx2Fma,
};

/// The ISA the process-wide dispatcher resolved to: kAvx2Fma when the
/// build has the AVX2 kernels compiled in (ADA_SIMD=ON, x86-64), the
/// CPU reports avx2+fma, and ADA_SIMD_DISPATCH does not override it;
/// kScalar otherwise. Resolved once on first call.
IsaLevel ActiveIsa();

/// Human-readable name of `isa` ("scalar" / "avx2+fma"), for bench
/// output and logs.
const char* IsaName(IsaLevel isa);

/// Sum of a[i] * b[i]. Reassociated reduction; error-bounded, not
/// bit-identical to transform::Dot.
double DotProduct(std::span<const double> a, std::span<const double> b);

/// ‖v‖² = DotProduct(v, v) without the second pointer walk.
double SquaredNorm(std::span<const double> v);

/// y[i] += a * x[i] for i in [0, y.size()). The sparse fused-distance
/// screen drives this with x = one row of the transposed centroid
/// block and a = one non-zero of the point, so the accumulation order
/// per output lane is the entry order of the sparse row — fixed and
/// deterministic for a given ISA.
void Axpy(double a, std::span<const double> x, std::span<double> y);

namespace internal {

/// Test hook: pins ActiveIsa() to `isa` (kAvx2Fma requests are ignored
/// unless the build and CPU support it — the hook can only narrow).
/// Pass the value returned by ResetIsaForTesting to restore. Not
/// thread-safe; tests drive it single-threaded.
void SetIsaForTesting(IsaLevel isa);

/// Clears a SetIsaForTesting override, returning dispatch to the
/// process-wide decision.
void ResetIsaForTesting();

/// True when the AVX2+FMA kernels are compiled in and the CPU supports
/// them (ignores the environment override and test pins).
bool Avx2Available();

}  // namespace internal

}  // namespace simd
}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_SIMD_KERNELS_H_
