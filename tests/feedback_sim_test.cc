#include "core/feedback_sim.h"

#include <set>

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace core {
namespace {

stats::MetaFeatures CohortFeatures() {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  EXPECT_TRUE(cohort.ok());
  return stats::ComputeMetaFeatures(cohort->log);
}

TEST(FeedbackSimTest, QualityDrivesItemLabels) {
  PersonaConfig persona = DiabetologistPersona();
  persona.noise_stddev = 0.0;  // Deterministic.
  FeedbackSimulator simulator(persona, 1);
  KnowledgeItem weak;
  weak.goal = EndGoal::kPatientGrouping;
  weak.quality = 0.0;
  KnowledgeItem strong = weak;
  strong.quality = 1.0;
  Interest weak_label = simulator.LabelItem(weak);
  Interest strong_label = simulator.LabelItem(strong);
  EXPECT_GE(static_cast<int>(strong_label), static_cast<int>(weak_label));
  EXPECT_EQ(strong_label, Interest::kHigh);
}

TEST(FeedbackSimTest, GoalAffinityDrivesLabels) {
  PersonaConfig persona = HospitalAdministratorPersona();
  persona.noise_stddev = 0.0;
  FeedbackSimulator simulator(persona, 2);
  stats::MetaFeatures features = CohortFeatures();
  // The administrator persona has far higher affinity for resource
  // planning than for interaction discovery.
  double planning =
      simulator.GoalUtility(features, EndGoal::kResourcePlanning);
  double interactions =
      simulator.GoalUtility(features, EndGoal::kInteractionDiscovery);
  EXPECT_GT(planning, interactions);
}

TEST(FeedbackSimTest, UtilityRespondsToDatasetShape) {
  PersonaConfig persona = DiabetologistPersona();
  persona.noise_stddev = 0.0;
  FeedbackSimulator simulator(persona, 3);
  stats::MetaFeatures sparse = CohortFeatures();
  stats::MetaFeatures dense = sparse;
  dense.density = 0.95;
  // Sparser data -> clustering more interesting (per the oracle).
  EXPECT_GT(simulator.GoalUtility(sparse, EndGoal::kPatientGrouping),
            simulator.GoalUtility(dense, EndGoal::kPatientGrouping));
}

TEST(FeedbackSimTest, DeterministicForSeed) {
  stats::MetaFeatures features = CohortFeatures();
  FeedbackSimulator a(ClinicalResearcherPersona(), 7);
  FeedbackSimulator b(ClinicalResearcherPersona(), 7);
  for (int32_t g = 0; g < kNumEndGoals; ++g) {
    EXPECT_EQ(a.LabelGoal(features, static_cast<EndGoal>(g)),
              b.LabelGoal(features, static_cast<EndGoal>(g)));
  }
}

TEST(FeedbackSimTest, NoiseProducesLabelVariation) {
  stats::MetaFeatures features = CohortFeatures();
  PersonaConfig persona = DiabetologistPersona();
  persona.noise_stddev = 1.0;
  FeedbackSimulator simulator(persona, 11);
  std::set<Interest> labels;
  for (int i = 0; i < 100; ++i) {
    labels.insert(simulator.LabelGoal(features, EndGoal::kPatientGrouping));
  }
  EXPECT_GT(labels.size(), 1u);
}

TEST(FeedbackSimTest, ThresholdsOrderLabels) {
  PersonaConfig persona;
  persona.goal_affinity = {0.0, 0.0, 0.0, 0.0, 0.0};
  persona.quality_weight = 1.0;
  persona.noise_stddev = 0.0;
  persona.high_threshold = 0.8;
  persona.medium_threshold = 0.4;
  FeedbackSimulator simulator(persona, 13);
  KnowledgeItem item;
  item.goal = EndGoal::kComplianceOutcome;
  item.quality = 0.2;
  EXPECT_EQ(simulator.LabelItem(item), Interest::kLow);
  item.quality = 0.6;
  EXPECT_EQ(simulator.LabelItem(item), Interest::kMedium);
  item.quality = 0.9;
  EXPECT_EQ(simulator.LabelItem(item), Interest::kHigh);
}

TEST(FeedbackSimTest, BuiltInPersonasAreDistinct) {
  EXPECT_NE(DiabetologistPersona().name,
            HospitalAdministratorPersona().name);
  EXPECT_NE(DiabetologistPersona().goal_affinity,
            HospitalAdministratorPersona().goal_affinity);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
