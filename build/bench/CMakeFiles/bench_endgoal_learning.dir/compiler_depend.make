# Empty compiler generated dependencies file for bench_endgoal_learning.
# This may be replaced when dependencies are built.
