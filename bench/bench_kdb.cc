// K-DB experiment (paper §IV-A, in-text): the six-collection data
// model, populated from a real pipeline artifact shape, with measured
// insert / indexed-lookup / scan / update / persistence throughput —
// the operations the paper's MongoDB deployment serves.
#include <benchmark/benchmark.h>

#include "kdb/database.h"
#include "kdb/query.h"
#include "kdb/storage.h"

namespace {

using namespace adahealth;
using common::Json;

kdb::Document MakeItemDocument(int64_t i) {
  kdb::Document document;
  document.Set("dataset_id", Json("bench-" + std::to_string(i % 8)));
  document.Set("kind", Json(i % 3 == 0   ? "cluster"
                            : i % 3 == 1 ? "itemset"
                                         : "rule"));
  document.Set("quality", Json(static_cast<double>(i % 100) / 100.0));
  Json::Object payload;
  payload["support"] = Json(i);
  payload["items"] = Json(Json::Array{Json(i), Json(i + 1)});
  document.Set("payload", Json(std::move(payload)));
  return document;
}

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    kdb::Collection collection("knowledge_items");
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      collection.Insert(MakeItemDocument(i));
    }
    benchmark::DoNotOptimize(collection.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_IndexedLookup(benchmark::State& state) {
  kdb::Collection collection("knowledge_items");
  collection.CreateIndex("dataset_id");
  for (int64_t i = 0; i < state.range(0); ++i) {
    collection.Insert(MakeItemDocument(i));
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto matches = collection.Find(
        kdb::Query().Eq("dataset_id",
                        Json("bench-" + std::to_string(i++ % 8))),
        10);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedLookup)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_FullScanFilter(benchmark::State& state) {
  kdb::Collection collection("knowledge_items");
  for (int64_t i = 0; i < state.range(0); ++i) {
    collection.Insert(MakeItemDocument(i));
  }
  for (auto _ : state) {
    auto matches = collection.Find(
        kdb::Query()
            .Eq("kind", Json("cluster"))
            .Where("quality", kdb::QueryOp::kGe, Json(0.5)));
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullScanFilter)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_UpdateById(benchmark::State& state) {
  kdb::Collection collection("knowledge_items");
  for (int64_t i = 0; i < 1000; ++i) {
    collection.Insert(MakeItemDocument(i));
  }
  Json::Object update;
  update["interest"] = Json("high");
  Json update_json(std::move(update));
  int64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        collection.UpdateById(1 + (id++ % 1000), update_json).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateById)->Unit(benchmark::kMicrosecond);

void BM_SerializeReload(benchmark::State& state) {
  kdb::Collection collection("knowledge_items");
  for (int64_t i = 0; i < state.range(0); ++i) {
    collection.Insert(MakeItemDocument(i));
  }
  for (auto _ : state) {
    std::string text = kdb::SerializeCollection(collection);
    auto reloaded = kdb::DeserializeCollection("knowledge_items", text);
    benchmark::DoNotOptimize(reloaded->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeReload)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
