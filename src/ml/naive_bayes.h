// Gaussian naive Bayes classifier — the alternative cluster-robustness
// assessor used in ablation A3 and the default model of the end-goal
// interest classifier (small sample sizes favor its strong bias).
#ifndef ADAHEALTH_ML_NAIVE_BAYES_H_
#define ADAHEALTH_ML_NAIVE_BAYES_H_

#include "ml/classifier.h"

namespace adahealth {
namespace ml {

struct NaiveBayesOptions {
  /// Variance floor added per feature, preventing degenerate
  /// likelihoods for constant features.
  double variance_smoothing = 1e-9;
};

/// Gaussian naive Bayes with class priors estimated from frequencies.
class GaussianNaiveBayes final : public Classifier {
 public:
  explicit GaussianNaiveBayes(
      NaiveBayesOptions options = NaiveBayesOptions())
      : options_(options) {}

  [[nodiscard]] common::Status Fit(const transform::Matrix& features,
                     const std::vector<int32_t>& labels,
                     int32_t num_classes) override;

  int32_t Predict(std::span<const double> features) const override;

 private:
  NaiveBayesOptions options_;
  int32_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_priors_;          // Per class.
  std::vector<std::vector<double>> means_;  // [class][feature].
  std::vector<std::vector<double>> variances_;
};

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_NAIVE_BAYES_H_
