#include "kdb/database.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

TEST(SchemaTest, SixCollections) {
  // Paper §IV-A: "The complete data model consists of six collections".
  EXPECT_EQ(Schema::CollectionNames().size(), 6u);
}

TEST(DatabaseTest, GetOrCreateIsStable) {
  Database db;
  Collection& a = db.GetOrCreate("alpha");
  a.Insert(Document());
  Collection& again = db.GetOrCreate("alpha");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(again.size(), 1u);
}

TEST(DatabaseTest, GetMissingIsNotFound) {
  Database db;
  EXPECT_FALSE(db.Get("nope").ok());
  db.GetOrCreate("yes");
  EXPECT_TRUE(db.Get("yes").ok());
}

TEST(DatabaseTest, EnsureSchemaCreatesAllSixCollections) {
  Database db;
  db.EnsureAdaHealthSchema();
  for (const std::string& name : Schema::CollectionNames()) {
    EXPECT_TRUE(db.Has(name)) << name;
  }
  EXPECT_EQ(db.CollectionNames().size(), 6u);
  // Idempotent.
  db.GetOrCreate(Schema::kFeedback).Insert(Document());
  db.EnsureAdaHealthSchema();
  EXPECT_EQ(db.GetOrCreate(Schema::kFeedback).size(), 1u);
}

TEST(DatabaseTest, SaveAndLoadRoundTrip) {
  Database db;
  db.EnsureAdaHealthSchema();
  Document feedback;
  feedback.Set("dataset_id", Json("d1"));
  feedback.Set("interest", Json("high"));
  db.GetOrCreate(Schema::kFeedback).Insert(std::move(feedback));
  Document descriptor;
  descriptor.Set("dataset_id", Json("d1"));
  db.GetOrCreate(Schema::kDescriptors).Insert(std::move(descriptor));

  std::string directory = testing::TempDir();
  ASSERT_TRUE(db.SaveTo(directory).ok());

  Database reloaded;
  ASSERT_TRUE(
      reloaded.LoadFrom(directory, Schema::CollectionNames()).ok());
  EXPECT_EQ(reloaded.GetOrCreate(Schema::kFeedback).size(), 1u);
  EXPECT_EQ(reloaded.GetOrCreate(Schema::kDescriptors).size(), 1u);
  auto found = reloaded.GetOrCreate(Schema::kFeedback)
                   .FindOne(Query().Eq("interest", Json("high")));
  EXPECT_TRUE(found.ok());

  for (const std::string& name : Schema::CollectionNames()) {
    std::remove((directory + "/" + name + ".jsonl").c_str());
  }
}

TEST(DatabaseTest, LoadFromMissingDirectoryFails) {
  Database db;
  EXPECT_FALSE(db.LoadFrom("/definitely/not/here", {"x"}).ok());
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
