// Ablation A2: Apriori vs FP-growth runtime across support thresholds
// on the cohort's transaction encoding, plus taxonomy-level
// (MeTA-style) mining cost. Counters report the number of frequent
// itemsets so quality parity is visible alongside speed.
#include <benchmark/benchmark.h>

#include "dataset/synthetic_cohort.h"
#include "patterns/apriori.h"
#include "patterns/fpgrowth.h"
#include "patterns/generalized.h"
#include "patterns/rules.h"
#include "patterns/transactions.h"

namespace {

using namespace adahealth;

struct CohortData {
  dataset::Cohort cohort;
  patterns::TransactionDb transactions;
};

const CohortData& Data() {
  static const CohortData* kData = [] {
    dataset::CohortConfig config = dataset::PaperScaleConfig();
    config.num_patients = 2000;  // Keeps Apriori's O(n^2) bearable.
    auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
    auto* data = new CohortData{std::move(cohort).value(), {}};
    data->transactions = patterns::BuildTransactions(data->cohort.log);
    return data;
  }();
  return *kData;
}

// state.range(0): relative min support in percent.
void BM_Apriori(benchmark::State& state) {
  const patterns::TransactionDb& db = Data().transactions;
  patterns::MiningOptions options;
  options.min_support_count = patterns::AbsoluteSupport(
      static_cast<double>(state.range(0)) / 100.0, db.size());
  options.max_itemset_size = 4;
  size_t itemsets = 0;
  for (auto _ : state) {
    auto result = patterns::MineApriori(db, options);
    itemsets = result->size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
}
BENCHMARK(BM_Apriori)->Arg(40)->Arg(30)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_FpGrowth(benchmark::State& state) {
  const patterns::TransactionDb& db = Data().transactions;
  patterns::MiningOptions options;
  options.min_support_count = patterns::AbsoluteSupport(
      static_cast<double>(state.range(0)) / 100.0, db.size());
  options.max_itemset_size = 4;
  size_t itemsets = 0;
  for (auto _ : state) {
    auto result = patterns::MineFpGrowth(db, options);
    itemsets = result->size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
}
BENCHMARK(BM_FpGrowth)->Arg(40)->Arg(30)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_GeneralizedMining(benchmark::State& state) {
  const CohortData& data = Data();
  patterns::GeneralizedMiningOptions options;
  options.min_support_level0 = 0.20;
  options.min_support_level1 = 0.30;
  options.min_support_level2 = 0.50;
  options.max_itemset_size = 3;
  size_t itemsets = 0;
  for (auto _ : state) {
    auto result = patterns::MineGeneralized(data.cohort.log,
                                            data.cohort.taxonomy, options);
    itemsets = result->size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
}
BENCHMARK(BM_GeneralizedMining)->Unit(benchmark::kMillisecond);

void BM_RuleGeneration(benchmark::State& state) {
  const patterns::TransactionDb& db = Data().transactions;
  patterns::MiningOptions mining;
  mining.min_support_count = patterns::AbsoluteSupport(0.20, db.size());
  mining.max_itemset_size = 4;
  auto itemsets = patterns::MineFpGrowth(db, mining);
  patterns::RuleOptions options;
  options.min_confidence = 0.6;
  size_t rules = 0;
  for (auto _ : state) {
    auto result =
        patterns::GenerateRules(itemsets.value(), db.size(), options);
    rules = result->size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_RuleGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
