#include "core/session.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "cluster/outliers.h"
#include "cluster/profiles.h"
#include "cluster/quality.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "patterns/fpgrowth.h"
#include "transform/feature_select.h"

namespace adahealth {
namespace core {

using common::Json;
using common::StatusOr;
using dataset::ExamLog;

// GCC 12's -Wmaybe-uninitialized misfires on moved-from std::variant
// alternatives inside Json when the Json(Object&&) constructions below
// are inlined at -O2; scoped suppression keeps -Werror builds clean
// without disabling the check elsewhere.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
StatusOr<std::vector<KnowledgeItem>> ClusterKnowledgeItems(
    const ExamLog& log, const transform::Matrix& vsm,
    const cluster::Clustering& clustering) {
  std::vector<KnowledgeItem> items;
  auto profiles = cluster::BuildClusterProfiles(log, vsm, clustering);
  if (!profiles.ok()) return profiles.status();

  for (const cluster::ClusterProfile& profile : profiles.value()) {
    // Signature: the lift-distinctive exams, which read clinically
    // ("this group over-uses ophthalmology_4 by 5x"), falling back to
    // the heaviest exams for clusters with no distinctive ones.
    std::string signature;
    Json::Array top_exams;
    const auto& ranked = profile.top_by_lift.empty()
                             ? profile.top_by_weight
                             : profile.top_by_lift;
    for (size_t rank = 0; rank < std::min<size_t>(3, ranked.size());
         ++rank) {
      const cluster::SignatureExam& exam = ranked[rank];
      if (!signature.empty()) signature += ", ";
      signature += common::StrFormat(
          "%s (x%.1f)", log.dictionary().Name(exam.exam).c_str(),
          exam.lift);
      Json::Object exam_json;
      exam_json["exam"] = Json(log.dictionary().Name(exam.exam));
      exam_json["lift"] = Json(exam.lift);
      exam_json["cluster_mean"] = Json(exam.cluster_mean);
      top_exams.push_back(Json(std::move(exam_json)));
    }

    KnowledgeItem item;
    item.id = "cluster:" + std::to_string(profile.cluster);
    item.goal = EndGoal::kPatientGrouping;
    item.kind = "cluster";
    item.quality = profile.cohesion;
    item.description = common::StrFormat(
        "patient group %d: %lld patients, distinctive exams [%s], "
        "cohesion %.3f",
        profile.cluster, static_cast<long long>(profile.size),
        signature.c_str(), item.quality);
    Json::Object payload;
    payload["cluster"] = Json(static_cast<int64_t>(profile.cluster));
    payload["size"] = Json(profile.size);
    payload["cohesion"] = Json(item.quality);
    payload["top_exams"] = Json(std::move(top_exams));
    item.payload = Json(std::move(payload));
    items.push_back(std::move(item));
  }
  return items;
}
#pragma GCC diagnostic pop

/// Builds one knowledge item summarizing the most atypical patients of
/// the clustering (paper §IV-B mentions outlier detection as a
/// downstream analysis).
StatusOr<std::vector<KnowledgeItem>> OutlierKnowledgeItems(
    const transform::Matrix& vsm, const cluster::Clustering& clustering,
    size_t top_n) {
  std::vector<KnowledgeItem> items;
  auto scores = cluster::CentroidOutlierScores(vsm, clustering);
  if (!scores.ok()) return scores.status();
  std::vector<size_t> top = cluster::TopOutliers(scores.value(), top_n);
  if (top.empty()) return items;

  KnowledgeItem item;
  item.id = "outliers:0";
  item.goal = EndGoal::kPatientGrouping;
  item.kind = "outliers";
  // Quality: how far the most atypical patient deviates, squashed to
  // (0, 1); score 1.0 (typical) maps to ~0.27.
  double worst = scores.value()[top.front()];
  item.quality = worst / (worst + 2.7);
  item.description = common::StrFormat(
      "%zu patients with atypical examination histories (max deviation "
      "%.1fx the group norm)",
      top.size(), worst);
  Json::Array patients;
  for (size_t row : top) {
    Json::Object entry;
    entry["patient"] = Json(static_cast<int64_t>(row));
    entry["score"] = Json(scores.value()[row]);
    patients.push_back(Json(std::move(entry)));
  }
  Json::Object payload;
  payload["patients"] = Json(std::move(patients));
  item.payload = Json(std::move(payload));
  items.push_back(std::move(item));
  return items;
}

const char* StageStateName(StageState state) {
  switch (state) {
    case StageState::kOk:
      return "ok";
    case StageState::kDegraded:
      return "degraded";
    case StageState::kSkipped:
      return "skipped";
    case StageState::kFailed:
      return "failed";
  }
  return "unknown";
}

const StageOutcome* SessionResult::FindStage(std::string_view stage) const {
  for (const StageOutcome& outcome : stages) {
    if (outcome.stage == stage) return &outcome;
  }
  return nullptr;
}

size_t SessionResult::CountStages(StageState state) const {
  size_t count = 0;
  for (const StageOutcome& outcome : stages) {
    if (outcome.state == state) ++count;
  }
  return count;
}

namespace {

/// Executes stage bodies under the session's retry policy, budgets and
/// degradation rules, recording one StageOutcome per stage. Bodies
/// must be safe to re-run (retries re-enter them from the top) and
/// commit their results only on success.
class StageRunner {
 public:
  StageRunner(const ResilienceOptions& options, SessionResult* result)
      : options_(options),
        result_(result),
        metrics_(common::MetricsRegistry::Default()) {}

  /// Runs `body` as stage `name`, timing it into `histogram`. The
  /// failpoint "session.<name>" is evaluated on every attempt. Returns
  /// non-OK only when the session must abort: the stage is essential
  /// (or resilience is disabled) and its retries are exhausted.
  /// Non-essential failures record a kDegraded outcome and return OK —
  /// callers apply their fallback when NeedsFallback() afterwards.
  [[nodiscard]] common::Status Run(
      const std::string& name, bool essential, std::string_view histogram,
      const std::function<common::Status()>& body) {
    StageOutcome outcome;
    outcome.stage = name;
    common::RetryPolicy policy = options_.retry;
    if (!options_.enabled) policy.max_attempts = 1;
    common::WallTimer timer;
    common::Status status = common::RetryWithPolicy(
        policy, "session." + name,
        [&] {
          ADA_RETURN_IF_ERROR(ADA_FAILPOINT(std::string("session.") + name));
          return body();
        },
        &outcome.attempts);
    outcome.seconds = timer.ElapsedSeconds();
    metrics_.GetHistogram(histogram).Record(outcome.seconds);
    if (outcome.attempts > 1) {
      metrics_.GetCounter("session/stage_retried").Increment();
    }
    if (status.ok()) {
      double budget = BudgetFor(name);
      if (budget > 0.0 && outcome.seconds > budget) {
        // The stage finished and its results are used; the overrun is
        // surfaced so operators can see the budget was blown.
        outcome.over_budget = true;
        outcome.state = StageState::kDegraded;
        outcome.status = common::DeadlineExceededError(common::StrFormat(
            "stage '%s' overran its budget (%.3f s > %.3f s)", name.c_str(),
            outcome.seconds, budget));
        metrics_.GetCounter("stage_degraded_total").Increment();
      }
      result_->stages.push_back(std::move(outcome));
      return common::OkStatus();
    }
    outcome.status = status;
    if (essential || !options_.enabled) {
      outcome.state = StageState::kFailed;
      metrics_.GetCounter("session/stage_failed").Increment();
      result_->stages.push_back(std::move(outcome));
      return status;
    }
    outcome.state = StageState::kDegraded;
    metrics_.GetCounter("stage_degraded_total").Increment();
    result_->stages.push_back(std::move(outcome));
    return common::OkStatus();
  }

  /// Records a stage that does not apply to this run.
  void Skip(const std::string& name, std::string reason) {
    StageOutcome outcome;
    outcome.stage = name;
    outcome.state = StageState::kSkipped;
    outcome.attempts = 0;
    outcome.status =
        common::Status(common::StatusCode::kOk, std::move(reason));
    result_->stages.push_back(std::move(outcome));
  }

  /// True when the most recent stage failed and degraded (its results
  /// are unusable and the caller must substitute a fallback). Budget
  /// overruns do NOT need a fallback — the stage's results are valid.
  [[nodiscard]] bool NeedsFallback() const {
    if (result_->stages.empty()) return false;
    const StageOutcome& last = result_->stages.back();
    return last.state == StageState::kDegraded && !last.over_budget;
  }

 private:
  double BudgetFor(const std::string& name) const {
    auto it = options_.stage_budget_seconds.find(name);
    if (it != options_.stage_budget_seconds.end()) return it->second;
    return options_.default_stage_budget_seconds;
  }

  const ResilienceOptions& options_;
  SessionResult* result_;
  common::MetricsRegistry& metrics_;
};

/// Stage 6 body: generalized itemsets + group-level association rules.
/// Builds into a local vector and appends to `knowledge` only on full
/// success, so a retried or degraded stage never leaves partial items.
common::Status MinePatternKnowledge(const ExamLog& log,
                                    const dataset::Taxonomy& taxonomy,
                                    const SessionOptions& options,
                                    std::vector<KnowledgeItem>& knowledge) {
  std::vector<KnowledgeItem> mined;
  auto generalized =
      patterns::MineGeneralized(log, taxonomy, options.pattern_mining);
  if (!generalized.ok()) return generalized.status();
  // Keep the largest high-level itemsets (most abstract knowledge).
  std::vector<patterns::GeneralizedItemset> interesting;
  for (auto& itemset : generalized.value()) {
    if (itemset.items.size() >= 2) interesting.push_back(std::move(itemset));
  }
  std::sort(interesting.begin(), interesting.end(),
            [](const auto& a, const auto& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.level != b.level) return a.level > b.level;
              return a.items < b.items;
            });
  const double total =
      static_cast<double>(std::max<size_t>(1, log.num_patients()));
  for (size_t i = 0; i < std::min<size_t>(interesting.size(), 10); ++i) {
    const auto& itemset = interesting[i];
    KnowledgeItem item;
    item.id = "itemset:" + std::to_string(i);
    item.goal = EndGoal::kCommonExamPatterns;
    item.kind = "itemset";
    item.quality = static_cast<double>(itemset.support) / total;
    item.description =
        "frequent pattern " +
        patterns::FormatGeneralizedItemset(itemset, log, taxonomy);
    Json::Object payload;
    payload["level"] = Json(static_cast<int64_t>(itemset.level));
    payload["support"] = Json(itemset.support);
    Json::Array item_ids;
    for (auto id : itemset.items) {
      item_ids.push_back(Json(static_cast<int64_t>(id)));
    }
    payload["items"] = Json(std::move(item_ids));
    item.payload = Json(std::move(payload));
    mined.push_back(std::move(item));
  }

  // Association rules at the group level (interaction discovery).
  patterns::TransactionDb group_db =
      patterns::BuildTransactionsAtLevel(log, taxonomy, 1);
  patterns::MiningOptions mining;
  mining.min_support_count = patterns::AbsoluteSupport(
      options.pattern_mining.min_support_level1, group_db.size());
  mining.max_itemset_size = options.pattern_mining.max_itemset_size;
  auto itemsets = patterns::MineFpGrowth(group_db, mining);
  if (!itemsets.ok()) return itemsets.status();
  auto rules = patterns::GenerateRules(itemsets.value(), group_db.size(),
                                       options.rules);
  if (!rules.ok()) return rules.status();
  for (size_t i = 0; i < std::min<size_t>(rules->size(), 10); ++i) {
    const patterns::AssociationRule& rule = (*rules)[i];
    auto render = [&](const std::vector<patterns::ItemId>& items) {
      std::string out;
      for (size_t j = 0; j < items.size(); ++j) {
        if (j > 0) out += ", ";
        out += taxonomy.GroupName(
            items[j] - static_cast<int32_t>(taxonomy.num_leaves()));
      }
      return out;
    };
    KnowledgeItem item;
    item.id = "rule:" + std::to_string(i);
    item.goal = EndGoal::kInteractionDiscovery;
    item.kind = "rule";
    item.quality = rule.confidence;
    item.description = common::StrFormat(
        "{%s} => {%s} (conf %.2f, lift %.2f)",
        render(rule.antecedent).c_str(), render(rule.consequent).c_str(),
        rule.confidence, rule.lift);
    Json::Object payload;
    payload["support"] = Json(rule.support);
    payload["confidence"] = Json(rule.confidence);
    payload["lift"] = Json(rule.lift);
    item.payload = Json(std::move(payload));
    mined.push_back(std::move(item));
  }

  for (KnowledgeItem& item : mined) knowledge.push_back(std::move(item));
  return common::OkStatus();
}

}  // namespace

AnalysisSession::AnalysisSession(kdb::Database* db) : db_(db) {
  db_->EnsureAdaHealthSchema();
}

StatusOr<SessionResult> AnalysisSession::Run(const ExamLog& log,
                                             const dataset::Taxonomy* taxonomy,
                                             const SessionOptions& options) {
  SessionResult result;
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetCounter("session/runs").Increment();
  // Touch the resilience counters so every metrics export (bench JSON
  // dumps included) carries them even when they stay at zero.
  metrics.GetCounter("stage_degraded_total");
  metrics.GetCounter("retry_attempts");
  metrics.GetCounter("storage_salvaged_lines");
  common::ScopedTimer session_timer(metrics, "session/total_seconds");
  StageRunner stages(options.resilience, &result);

  // 1. Characterization (K-DB collections 1 and 3). Non-essential:
  // failing it costs those collections, not the run.
  ADA_RETURN_IF_ERROR(stages.Run(
      "characterize", /*essential=*/false, "session/characterize_seconds",
      [&] {
        result.characterization = Characterize(log);
        if (options.store_raw_dataset) {
          kdb::Document raw;
          raw.Set("dataset_id", Json(options.dataset_id));
          raw.Set("csv", Json(log.ToCsv()));
          db_->GetOrCreate(kdb::Schema::kRawDatasets).Insert(std::move(raw));
        }
        StoreCharacterization(result.characterization, options.dataset_id,
                              *db_);
        return common::OkStatus();
      }));

  // 2. Transformation selection. Essential: everything downstream
  // needs the chosen VSM configuration.
  ADA_RETURN_IF_ERROR(stages.Run(
      "transform", /*essential=*/true, "session/transform_select_seconds",
      [&] {
        auto selection = SelectTransformation(log, options.transform);
        if (!selection.ok()) return selection.status();
        result.transform = std::move(selection).value();
        return common::OkStatus();
      }));

  // 3. Adaptive partial mining: pick the smallest exam subset whose
  // clustering quality matches the full data within tolerance.
  // Non-essential: on failure, degrade to mining the full dataset.
  PartialMiningOptions partial = options.partial;
  partial.vsm = result.transform.best();
  ADA_RETURN_IF_ERROR(stages.Run(
      "partial_mining", /*essential=*/false,
      "session/partial_mining_seconds", [&] {
        auto partial_result = RunExamSubsetPartialMining(log, partial);
        if (!partial_result.ok()) return partial_result.status();
        result.partial = std::move(partial_result).value();
        return common::OkStatus();
      }));
  if (stages.NeedsFallback()) {
    result.partial = PartialMiningResult{};
    result.partial.ks = partial.ks;
    PartialMiningStep full_step;
    full_step.fraction = 1.0;
    full_step.record_coverage = 1.0;
    result.partial.steps.push_back(full_step);
    result.partial.selected_step = 0;
  }
  const PartialMiningStep& selected =
      result.partial.steps[result.partial.selected_step];
  const std::vector<bool> mining_mask =
      transform::TopFractionExamsMask(log, selected.fraction);
  ExamLog mining_log = log.FilterExamTypes(mining_mask);
  // The original exam ids behind the VSM columns (FilterExamTypes
  // rebuilds a dense dictionary in kept order, so column j of the VSM
  // is the j-th true bit of the mask). The cohort store persists these
  // with the selected centroids for next generation's warm hint.
  for (size_t e = 0; e < mining_mask.size(); ++e) {
    if (mining_mask[e]) {
      result.mining_exam_types.push_back(static_cast<int32_t>(e));
    }
  }

  // Record the transformed dataset in the K-DB (collection 2).
  {
    kdb::Document transformed;
    transformed.Set("dataset_id", Json(options.dataset_id));
    transformed.Set("vsm_weighting",
                    Json(std::string(transform::VsmWeightingName(
                        result.transform.best().weighting))));
    transformed.Set("vsm_normalization",
                    Json(std::string(transform::VsmNormalizationName(
                        result.transform.best().normalization))));
    transformed.Set("exam_fraction", Json(selected.fraction));
    transformed.Set("record_coverage", Json(selected.record_coverage));
    transformed.Set("num_exam_types",
                    Json(static_cast<int64_t>(mining_log.num_exam_types())));
    db_->GetOrCreate(kdb::Schema::kTransformedDatasets)
        .Insert(std::move(transformed));
  }

  // 4. Algorithm optimization on the selected subset (Table I).
  // Essential: knowledge extraction needs the chosen clustering.
  transform::Matrix vsm = BuildVsm(mining_log, result.transform.best());
  // Warm-start identity gate: the prior generation's centroids are
  // adopted only when they provably mean the same thing this run —
  // partial mining selected the same original exam types and the
  // widths agree. Anything else (new exams changed the selection, a
  // different fraction won) silently runs the cold sweep; the hint is
  // never applied blind.
  OptimizerOptions optimizer_options = options.optimizer;
  if (!options.warm.centroids.empty() &&
      options.warm.exam_types == result.mining_exam_types &&
      options.warm.centroids.cols() == vsm.cols()) {
    optimizer_options.warm_centroids = options.warm.centroids;
    optimizer_options.restarts = std::max(1, options.warm.restarts);
    common::MetricsRegistry::Default()
        .GetCounter("session/warm_hints_applied")
        .Increment();
  }
  ADA_RETURN_IF_ERROR(stages.Run(
      "optimizer", /*essential=*/true, "session/optimize_seconds", [&] {
        auto optimized = OptimizeClustering(vsm, optimizer_options);
        if (!optimized.ok()) return optimized.status();
        result.optimizer = std::move(optimized).value();
        return common::OkStatus();
      }));

  // 5. Knowledge extraction (clusters + outliers). Non-essential: a
  // failure degrades to an empty knowledge list; the session still
  // reports characterization, transform and optimizer results.
  std::vector<KnowledgeItem> knowledge;
  ADA_RETURN_IF_ERROR(stages.Run(
      "knowledge", /*essential=*/false, "session/knowledge_seconds", [&] {
        std::vector<KnowledgeItem> items;
        auto cluster_items = ClusterKnowledgeItems(
            mining_log, vsm, result.optimizer.best().clustering);
        if (!cluster_items.ok()) return cluster_items.status();
        items = std::move(cluster_items).value();
        auto outlier_items =
            OutlierKnowledgeItems(vsm, result.optimizer.best().clustering);
        if (!outlier_items.ok()) return outlier_items.status();
        for (KnowledgeItem& item : outlier_items.value()) {
          items.push_back(std::move(item));
        }
        knowledge = std::move(items);
        return common::OkStatus();
      }));

  // 6. Generalized pattern mining + association rules. Skipped without
  // a taxonomy; non-essential otherwise (clusters/outliers survive).
  if (taxonomy == nullptr) {
    stages.Skip("pattern_mining", "no taxonomy provided");
  } else {
    ADA_RETURN_IF_ERROR(stages.Run(
        "pattern_mining", /*essential=*/false,
        "session/pattern_mining_seconds",
        [&] { return MinePatternKnowledge(log, *taxonomy, options,
                                          knowledge); }));
  }

  // 7. Feedback-adaptive ranking. Non-essential: on failure the
  // unranked extraction order is served instead.
  ADA_RETURN_IF_ERROR(stages.Run(
      "ranking", /*essential=*/false, "session/ranking_seconds", [&] {
        KnowledgeRanker ranker;
        ADA_RETURN_IF_ERROR(ranker.AddItems(knowledge));
        result.knowledge = ranker.Ranked();
        return common::OkStatus();
      }));
  if (stages.NeedsFallback()) result.knowledge = knowledge;

  // 8. Store all items (collection 4) and the manageable selected
  // subset (collection 5); optionally persist the K-DB to disk.
  // Non-essential: analysis results survive a broken store. The
  // in-memory inserts happen exactly once (`stored`) so storage-I/O
  // retries cannot duplicate documents.
  bool stored = false;
  ADA_RETURN_IF_ERROR(stages.Run(
      "kdb_store", /*essential=*/false, "session/store_seconds", [&] {
        if (!stored) {
          kdb::Collection& item_collection =
              db_->GetOrCreate(kdb::Schema::kKnowledgeItems);
          for (const KnowledgeItem& item : knowledge) {
            kdb::Document document;
            document.Set("dataset_id", Json(options.dataset_id));
            document.Set("item", item.ToJson());
            item_collection.Insert(std::move(document));
          }
          kdb::Collection& selected_collection =
              db_->GetOrCreate(kdb::Schema::kSelectedKnowledge);
          for (size_t i = 0;
               i <
               std::min(options.max_selected_items, result.knowledge.size());
               ++i) {
            kdb::Document document;
            document.Set("dataset_id", Json(options.dataset_id));
            document.Set("rank", Json(static_cast<int64_t>(i)));
            document.Set("item", result.knowledge[i].ToJson());
            selected_collection.Insert(std::move(document));
          }
          stored = true;
        }
        if (!options.persist_directory.empty()) {
          kdb::Database::PersistOptions persist;
          // The stage-level retry already wraps this call.
          persist.retry.max_attempts = 1;
          return db_->SaveTo(options.persist_directory, persist);
        }
        return common::OkStatus();
      }));

  result.summary = common::StrFormat(
      "ADA-HEALTH session '%s'\n"
      "  characterization: %lld patients, %lld exam types, %lld records, "
      "density %.4f\n"
      "  transformation: %s/%s (similarity lift %.2fx)\n"
      "  partial mining: selected %.0f%% of exam types (%.0f%% of "
      "records), quality diff %.2f%%\n"
      "  optimizer: best K = %d (SSE %.1f, accuracy %.2f, precision "
      "%.2f, recall %.2f)\n"
      "  knowledge: %zu items extracted, top %zu selected",
      options.dataset_id.c_str(),
      static_cast<long long>(result.characterization.features.num_patients),
      static_cast<long long>(
          result.characterization.features.num_exam_types),
      static_cast<long long>(result.characterization.features.num_records),
      result.characterization.features.density,
      transform::VsmWeightingName(result.transform.best().weighting),
      transform::VsmNormalizationName(result.transform.best().normalization),
      result.transform.scores[result.transform.best_index].lift,
      100.0 * selected.fraction, 100.0 * selected.record_coverage,
      100.0 * selected.mean_relative_diff, result.optimizer.best_k(),
      result.optimizer.best().sse, result.optimizer.best().accuracy,
      result.optimizer.best().avg_precision,
      result.optimizer.best().avg_recall, result.knowledge.size(),
      std::min(options.max_selected_items, result.knowledge.size()));
  std::string resilience_note;
  for (const StageOutcome& outcome : result.stages) {
    if (outcome.state == StageState::kOk && outcome.attempts <= 1) continue;
    if (!resilience_note.empty()) resilience_note += ", ";
    resilience_note += common::StrFormat(
        "%s=%s(%d attempt%s)", outcome.stage.c_str(),
        StageStateName(outcome.state), outcome.attempts,
        outcome.attempts == 1 ? "" : "s");
  }
  if (!resilience_note.empty()) {
    result.summary += "\n  resilience: " + resilience_note;
  }
  return result;
}

}  // namespace core
}  // namespace adahealth
