#include "cluster/bisecting.h"

#include <set>

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using test::MakeBlobs;
using test::RandIndex;
using transform::Matrix;

TEST(BisectingKMeansTest, RecoversBlobs) {
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}}, 40, 0.5, 21);
  BisectingOptions options;
  options.k = 4;
  options.seed = 23;
  auto clustering = RunBisectingKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GT(RandIndex(clustering->assignments, blobs.labels), 0.98);
}

TEST(BisectingKMeansTest, ProducesExactlyKNonEmptyClusters) {
  test::Blobs blobs = MakeBlobs({{0.0}, {5.0}}, 30, 0.5, 25);
  BisectingOptions options;
  options.k = 5;
  auto clustering = RunBisectingKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  std::vector<int64_t> sizes = ClusterSizes(clustering->assignments, 5);
  for (int64_t s : sizes) EXPECT_GT(s, 0);
}

TEST(BisectingKMeansTest, KEqualsOneIsGlobalMean) {
  test::Blobs blobs = MakeBlobs({{2.0, 3.0}}, 30, 1.0, 27);
  BisectingOptions options;
  options.k = 1;
  auto clustering = RunBisectingKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  std::vector<double> means = blobs.points.ColumnMeans();
  EXPECT_NEAR(clustering->centroids.At(0, 0), means[0], 1e-9);
  EXPECT_NEAR(clustering->centroids.At(0, 1), means[1], 1e-9);
}

TEST(BisectingKMeansTest, SseConsistentWithAssignments) {
  test::Blobs blobs = MakeBlobs({{0.0}, {6.0}, {12.0}}, 25, 0.5, 29);
  BisectingOptions options;
  options.k = 3;
  auto clustering = RunBisectingKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double sse = 0.0;
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    sse += transform::SquaredDistance(
        blobs.points.Row(i),
        clustering->centroids.Row(
            static_cast<size_t>(clustering->assignments[i])));
  }
  EXPECT_NEAR(sse, clustering->sse, 1e-9);
}

TEST(BisectingKMeansTest, DeterministicForSeed) {
  test::Blobs blobs = MakeBlobs({{0.0}, {4.0}}, 20, 0.4, 31);
  BisectingOptions options;
  options.k = 3;
  options.seed = 55;
  auto a = RunBisectingKMeans(blobs.points, options);
  auto b = RunBisectingKMeans(blobs.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(BisectingKMeansTest, InvalidArgumentsRejected) {
  Matrix points(4, 1, 1.0);
  BisectingOptions options;
  options.k = 0;
  EXPECT_FALSE(RunBisectingKMeans(points, options).ok());
  options.k = 5;
  EXPECT_FALSE(RunBisectingKMeans(points, options).ok());
  options.k = 2;
  options.trials_per_split = 0;
  EXPECT_FALSE(RunBisectingKMeans(points, options).ok());
  EXPECT_FALSE(RunBisectingKMeans(Matrix(), options).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
