// RFC-4180-style CSV reading and writing.
//
// Supports quoted fields with embedded delimiters, escaped quotes ("")
// and embedded newlines. Used for dataset import/export.
#ifndef ADAHEALTH_COMMON_CSV_H_
#define ADAHEALTH_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace common {

/// Parses a whole CSV document into rows of fields.
/// Fails with INVALID_ARGUMENT on unterminated quotes or stray quote
/// characters inside unquoted fields.
[[nodiscard]] StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, char delimiter = ',');

/// Serializes rows to CSV, quoting fields that contain the delimiter,
/// quotes, or newlines.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char delimiter = ',');

/// Reads an entire file into a string.
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
[[nodiscard]] Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Verifies that `path` is an existing, writable directory; UNAVAILABLE
/// (naming the path) otherwise. Used to fail persistence operations up
/// front instead of midway through a multi-file write.
[[nodiscard]] Status CheckDirectoryWritable(const std::string& path);

/// As above but only requires read+list access (for load paths).
[[nodiscard]] Status CheckDirectoryReadable(const std::string& path);

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_CSV_H_
