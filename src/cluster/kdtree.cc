#include "cluster/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace adahealth {
namespace cluster {

KdTree::KdTree(const transform::Matrix& data, size_t leaf_size)
    : data_(&data) {
  ADA_CHECK_GE(leaf_size, 1u);
  ADA_CHECK_GT(data.rows(), 0u);
  point_indices_.resize(data.rows());
  std::iota(point_indices_.begin(), point_indices_.end(), 0u);
  nodes_.reserve(2 * data.rows() / leaf_size + 2);
  BuildNode(0, data.rows(), leaf_size);
}

int32_t KdTree::BuildNode(size_t begin, size_t end, size_t leaf_size) {
  const size_t dims = data_->cols();
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.box_min.assign(dims, std::numeric_limits<double>::max());
    node.box_max.assign(dims, std::numeric_limits<double>::lowest());
    node.sum.assign(dims, 0.0);
    for (size_t i = begin; i < end; ++i) {
      std::span<const double> point = data_->Row(point_indices_[i]);
      for (size_t d = 0; d < dims; ++d) {
        node.box_min[d] = std::min(node.box_min[d], point[d]);
        node.box_max[d] = std::max(node.box_max[d], point[d]);
        node.sum[d] += point[d];
        node.sum_squared_norms += point[d] * point[d];
      }
    }
  }
  if (end - begin <= leaf_size) return id;

  // Split along the widest dimension at the median.
  size_t split_dim = 0;
  double widest = -1.0;
  for (size_t d = 0; d < dims; ++d) {
    double width = nodes_[static_cast<size_t>(id)].box_max[d] -
                   nodes_[static_cast<size_t>(id)].box_min[d];
    if (width > widest) {
      widest = width;
      split_dim = d;
    }
  }
  if (widest <= 0.0) return id;  // All points identical: keep as leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(point_indices_.begin() + static_cast<ptrdiff_t>(begin),
                   point_indices_.begin() + static_cast<ptrdiff_t>(mid),
                   point_indices_.begin() + static_cast<ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return data_->At(a, split_dim) < data_->At(b, split_dim);
                   });

  int32_t left = BuildNode(begin, mid, leaf_size);
  int32_t right = BuildNode(mid, end, leaf_size);
  nodes_[static_cast<size_t>(id)].left = left;
  nodes_[static_cast<size_t>(id)].right = right;
  return id;
}

}  // namespace cluster
}  // namespace adahealth
