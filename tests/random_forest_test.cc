#include "ml/random_forest.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace ml {
namespace {

using transform::Matrix;

TEST(RandomForestTest, SeparatesBlobs) {
  test::Blobs train = test::MakeBlobs({{0.0, 0.0}, {8.0, 8.0}}, 50, 0.7,
                                      111);
  RandomForestClassifier model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 2).ok());
  EXPECT_EQ(model.num_trees(), 20u);
  EXPECT_EQ(model.Predict(std::vector<double>{0.1, 0.2}), 0);
  EXPECT_EQ(model.Predict(std::vector<double>{7.8, 8.3}), 1);
}

TEST(RandomForestTest, GeneralizesOnHeldOut) {
  test::Blobs train = test::MakeBlobs(
      {{0.0, 0.0, 0.0}, {4.0, 0.0, 4.0}, {0.0, 4.0, 4.0}}, 60, 0.7, 113);
  test::Blobs held_out = test::MakeBlobs(
      {{0.0, 0.0, 0.0}, {4.0, 0.0, 4.0}, {0.0, 4.0, 4.0}}, 40, 0.7, 114);
  RandomForestClassifier model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 3).ok());
  std::vector<int32_t> predicted = model.PredictBatch(held_out.points);
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == held_out.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(RandomForestTest, BeatsSingleShallowTreeOnNoisyData) {
  // Noisy overlapping blobs: an ensemble of depth-3 trees should not
  // lose to one depth-3 tree (and usually wins).
  test::Blobs train = test::MakeBlobs({{0.0, 0.0}, {2.0, 2.0}}, 150, 1.2,
                                      117);
  test::Blobs held_out = test::MakeBlobs({{0.0, 0.0}, {2.0, 2.0}}, 100,
                                         1.2, 118);
  DecisionTreeOptions shallow;
  shallow.max_depth = 3;

  DecisionTreeClassifier single(shallow);
  ASSERT_TRUE(single.Fit(train.points, train.labels, 2).ok());
  RandomForestOptions forest_options;
  forest_options.num_trees = 40;
  forest_options.tree = shallow;
  RandomForestClassifier forest(forest_options);
  ASSERT_TRUE(forest.Fit(train.points, train.labels, 2).ok());

  auto accuracy = [&](const Classifier& model) {
    std::vector<int32_t> predicted = model.PredictBatch(held_out.points);
    int correct = 0;
    for (size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i] == held_out.labels[i]) ++correct;
    }
    return static_cast<double>(correct) / predicted.size();
  };
  EXPECT_GE(accuracy(forest), accuracy(single) - 0.02);
}

TEST(RandomForestTest, DeterministicForSeed) {
  test::Blobs train = test::MakeBlobs({{0.0}, {5.0}}, 40, 0.8, 119);
  test::Blobs probe = test::MakeBlobs({{0.0}, {5.0}}, 20, 0.8, 120);
  RandomForestClassifier a;
  RandomForestClassifier b;
  ASSERT_TRUE(a.Fit(train.points, train.labels, 2).ok());
  ASSERT_TRUE(b.Fit(train.points, train.labels, 2).ok());
  EXPECT_EQ(a.PredictBatch(probe.points), b.PredictBatch(probe.points));
}

TEST(RandomForestTest, FeatureFractionOne) {
  test::Blobs train = test::MakeBlobs({{0.0, 0.0}, {6.0, 6.0}}, 30, 0.5,
                                      121);
  RandomForestOptions options;
  options.feature_fraction = 1.0;
  options.num_trees = 5;
  RandomForestClassifier model(options);
  ASSERT_TRUE(model.Fit(train.points, train.labels, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{6.0, 6.1}), 1);
}

TEST(RandomForestTest, RejectsInvalidOptions) {
  Matrix features(4, 2, 1.0);
  std::vector<int32_t> labels{0, 0, 1, 1};
  RandomForestOptions options;
  options.num_trees = 0;
  EXPECT_FALSE(
      RandomForestClassifier(options).Fit(features, labels, 2).ok());
  options = RandomForestOptions();
  options.feature_fraction = 0.0;
  EXPECT_FALSE(
      RandomForestClassifier(options).Fit(features, labels, 2).ok());
  options.feature_fraction = 1.5;
  EXPECT_FALSE(
      RandomForestClassifier(options).Fit(features, labels, 2).ok());
  RandomForestClassifier model;
  EXPECT_FALSE(model.Fit(Matrix(), {}, 2).ok());
  EXPECT_FALSE(model.Fit(features, {0, 1}, 2).ok());
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
