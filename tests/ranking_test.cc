#include "core/ranking.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace core {
namespace {

KnowledgeItem Item(const std::string& id, const std::string& kind,
                   EndGoal goal, double quality) {
  KnowledgeItem item;
  item.id = id;
  item.kind = kind;
  item.goal = goal;
  item.quality = quality;
  return item;
}

std::vector<KnowledgeItem> MakeItems() {
  return {
      Item("cluster:0", "cluster", EndGoal::kPatientGrouping, 0.9),
      Item("cluster:1", "cluster", EndGoal::kPatientGrouping, 0.6),
      Item("rule:0", "rule", EndGoal::kInteractionDiscovery, 0.7),
      Item("itemset:0", "itemset", EndGoal::kCommonExamPatterns, 0.5),
  };
}

TEST(RankerTest, InitialOrderFollowsQuality) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  std::vector<KnowledgeItem> ranked = ranker.Ranked();
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].id, "cluster:0");
  EXPECT_EQ(ranked[1].id, "rule:0");
  EXPECT_EQ(ranked[2].id, "cluster:1");
  EXPECT_EQ(ranked[3].id, "itemset:0");
}

TEST(RankerTest, DirectFeedbackReordersItems) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  // Physician finds the weakest item highly interesting and the top
  // item useless.
  ASSERT_TRUE(ranker.RecordFeedback("itemset:0", Interest::kHigh).ok());
  ASSERT_TRUE(ranker.RecordFeedback("cluster:0", Interest::kLow).ok());
  std::vector<KnowledgeItem> ranked = ranker.Ranked();
  // The rated-high item must now outrank the rated-low item.
  size_t itemset_rank = 99;
  size_t cluster0_rank = 99;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].id == "itemset:0") itemset_rank = i;
    if (ranked[i].id == "cluster:0") cluster0_rank = i;
  }
  EXPECT_LT(itemset_rank, cluster0_rank);
}

TEST(RankerTest, FeedbackUpdatesInterestField) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  ASSERT_TRUE(ranker.RecordFeedback("rule:0", Interest::kHigh).ok());
  for (const KnowledgeItem& item : ranker.Ranked()) {
    if (item.id == "rule:0") {
      EXPECT_EQ(item.interest, Interest::kHigh);
    }
  }
}

TEST(RankerTest, KindBiasGeneralizesAcrossItems) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  double cluster1_before = ranker.ScoreOf("cluster:1").value();
  // Positive feedback on the *other* cluster item lifts all clusters.
  ASSERT_TRUE(ranker.RecordFeedback("cluster:0", Interest::kHigh).ok());
  double cluster1_after = ranker.ScoreOf("cluster:1").value();
  EXPECT_GT(cluster1_after, cluster1_before);
}

TEST(RankerTest, NegativeKindBiasDemotes) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  double cluster1_before = ranker.ScoreOf("cluster:1").value();
  ASSERT_TRUE(ranker.RecordFeedback("cluster:0", Interest::kLow).ok());
  EXPECT_LT(ranker.ScoreOf("cluster:1").value(), cluster1_before);
}

TEST(RankerTest, RepeatedFeedbackAverages) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  ASSERT_TRUE(ranker.RecordFeedback("rule:0", Interest::kLow).ok());
  double after_low = ranker.ScoreOf("rule:0").value();
  ASSERT_TRUE(ranker.RecordFeedback("rule:0", Interest::kHigh).ok());
  double after_both = ranker.ScoreOf("rule:0").value();
  EXPECT_GT(after_both, after_low);
}

TEST(RankerTest, ErrorsOnUnknownAndDuplicateIds) {
  KnowledgeRanker ranker;
  ASSERT_TRUE(ranker.AddItems(MakeItems()).ok());
  EXPECT_FALSE(ranker.RecordFeedback("ghost", Interest::kHigh).ok());
  EXPECT_FALSE(ranker.ScoreOf("ghost").ok());
  EXPECT_FALSE(ranker.AddItems(MakeItems()).ok());  // Duplicates.
  KnowledgeItem empty_id;
  EXPECT_FALSE(ranker.AddItems({empty_id}).ok());
}

TEST(RankerTest, DeterministicTieBreakById) {
  KnowledgeRanker ranker;
  std::vector<KnowledgeItem> items{
      Item("b", "x", EndGoal::kPatientGrouping, 0.5),
      Item("a", "x", EndGoal::kPatientGrouping, 0.5),
  };
  ASSERT_TRUE(ranker.AddItems(items).ok());
  std::vector<KnowledgeItem> ranked = ranker.Ranked();
  EXPECT_EQ(ranked[0].id, "a");
  EXPECT_EQ(ranked[1].id, "b");
}

}  // namespace
}  // namespace core
}  // namespace adahealth
