// Univariate statistical descriptors used by the data-characterization
// step of ADA-HEALTH (paper §III, "Data characterization and
// transformation": model data distributions with statistical indices).
#ifndef ADAHEALTH_STATS_DESCRIPTORS_H_
#define ADAHEALTH_STATS_DESCRIPTORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adahealth {
namespace stats {

/// Summary statistics of a numeric sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // Population variance.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double skewness = 0.0;  // Fisher's moment coefficient; 0 for n < 2.
};

/// Computes Summary over `values`. Returns a zeroed Summary when empty.
Summary Summarize(const std::vector<double>& values);

/// Convenience overload for integer samples.
Summary Summarize(const std::vector<int64_t>& values);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// Shannon entropy (bits) of a discrete distribution given by
/// non-negative `counts`. Zero counts are skipped; returns 0 when the
/// total is 0.
double Entropy(const std::vector<int64_t>& counts);

/// Normalized entropy: Entropy / log2(#nonzero buckets); in [0, 1].
/// Returns 1.0 when fewer than two non-empty buckets exist.
double NormalizedEntropy(const std::vector<int64_t>& counts);

/// Gini coefficient of the distribution of non-negative `counts`
/// (0 = perfectly even, -> 1 = concentrated on one bucket).
double GiniCoefficient(const std::vector<int64_t>& counts);

/// Fraction of total mass covered by the `top_fraction` most frequent
/// buckets (the paper's "top 20% of exam types cover 70% of rows"
/// curve). `top_fraction` in [0, 1].
double TopFractionCoverage(const std::vector<int64_t>& counts,
                           double top_fraction);

/// Smallest number of most-frequent buckets whose mass reaches
/// `coverage` (in [0, 1]) of the total. Returns counts.size() when the
/// total is zero and coverage > 0.
size_t BucketsForCoverage(const std::vector<int64_t>& counts,
                          double coverage);

/// Pearson correlation of two equal-length samples; 0 when either is
/// constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace stats
}  // namespace adahealth

#endif  // ADAHEALTH_STATS_DESCRIPTORS_H_
