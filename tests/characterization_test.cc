#include "core/characterization.h"

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"
#include "kdb/query.h"

namespace adahealth {
namespace core {
namespace {

TEST(CharacterizationTest, ReportContainsKeyFigures) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  CharacterizationReport report = Characterize(cohort->log);
  EXPECT_EQ(report.features.num_patients, 400);
  EXPECT_NE(report.text.find("400 patients"), std::string::npos);
  EXPECT_NE(report.text.find("48 exam types"), std::string::npos);
  EXPECT_NE(report.text.find("density"), std::string::npos);
}

TEST(CharacterizationTest, StoreWritesDescriptorDocument) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  CharacterizationReport report = Characterize(cohort->log);
  kdb::Database db;
  kdb::DocumentId id = StoreCharacterization(report, "cohort-1", db);
  EXPECT_GT(id, 0);
  kdb::Collection& descriptors = db.GetOrCreate(kdb::Schema::kDescriptors);
  auto stored = descriptors.FindOne(
      kdb::Query().Eq("dataset_id", common::Json("cohort-1")));
  ASSERT_TRUE(stored.ok());
  const common::Json* features = stored->Get("features");
  ASSERT_NE(features, nullptr);
  auto restored = stats::MetaFeatures::FromJson(*features);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_patients, report.features.num_patients);
}

TEST(CharacterizationTest, MultipleDatasetsCoexist) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  CharacterizationReport report = Characterize(cohort->log);
  kdb::Database db;
  StoreCharacterization(report, "a", db);
  StoreCharacterization(report, "b", db);
  kdb::Collection& descriptors = db.GetOrCreate(kdb::Schema::kDescriptors);
  EXPECT_EQ(descriptors.size(), 2u);
  EXPECT_EQ(descriptors.Count(
                kdb::Query().Eq("dataset_id", common::Json("a"))),
            1u);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
