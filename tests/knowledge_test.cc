#include "core/knowledge.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace core {
namespace {

using common::Json;

TEST(EndGoalNamesTest, RoundTrip) {
  for (int32_t g = 0; g < kNumEndGoals; ++g) {
    EndGoal goal = static_cast<EndGoal>(g);
    auto parsed = EndGoalFromName(EndGoalName(goal));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), goal);
  }
  EXPECT_FALSE(EndGoalFromName("nonsense").ok());
}

TEST(InterestNamesTest, RoundTrip) {
  for (int32_t i = 0; i < kNumInterestLevels; ++i) {
    Interest interest = static_cast<Interest>(i);
    auto parsed = InterestFromName(InterestName(interest));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), interest);
  }
  EXPECT_FALSE(InterestFromName("meh").ok());
}

KnowledgeItem MakeItem() {
  KnowledgeItem item;
  item.id = "cluster:3";
  item.goal = EndGoal::kPatientGrouping;
  item.kind = "cluster";
  item.description = "group of 120 patients";
  item.quality = 0.82;
  Json::Object payload;
  payload["size"] = Json(int64_t{120});
  item.payload = Json(std::move(payload));
  item.interest = Interest::kHigh;
  return item;
}

TEST(KnowledgeItemTest, JsonRoundTrip) {
  KnowledgeItem item = MakeItem();
  auto restored = KnowledgeItem::FromJson(item.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->id, item.id);
  EXPECT_EQ(restored->goal, item.goal);
  EXPECT_EQ(restored->kind, item.kind);
  EXPECT_EQ(restored->description, item.description);
  EXPECT_DOUBLE_EQ(restored->quality, item.quality);
  EXPECT_EQ(restored->payload, item.payload);
  EXPECT_EQ(restored->interest, item.interest);
}

TEST(KnowledgeItemTest, FromJsonValidation) {
  EXPECT_FALSE(KnowledgeItem::FromJson(Json(int64_t{5})).ok());
  // Missing item_id.
  EXPECT_FALSE(KnowledgeItem::FromJson(Json(Json::Object{})).ok());
  // Missing goal.
  Json::Object only_id;
  only_id["item_id"] = Json("x");
  EXPECT_FALSE(KnowledgeItem::FromJson(Json(std::move(only_id))).ok());
  // Unknown goal name.
  Json::Object bad_goal;
  bad_goal["item_id"] = Json("x");
  bad_goal["goal"] = Json("not_a_goal");
  EXPECT_FALSE(KnowledgeItem::FromJson(Json(std::move(bad_goal))).ok());
}

TEST(KnowledgeItemTest, OptionalFieldsDefault) {
  Json::Object minimal;
  minimal["item_id"] = Json("x");
  minimal["goal"] = Json("patient_grouping");
  auto restored = KnowledgeItem::FromJson(Json(std::move(minimal)));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->kind, "");
  EXPECT_DOUBLE_EQ(restored->quality, 0.0);
  EXPECT_EQ(restored->interest, Interest::kMedium);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
