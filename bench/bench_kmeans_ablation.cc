// Ablation A1: clustering engines on the paper-scale cohort VSM.
//
// Compares the naive Lloyd engine against the accelerated
// (Hamerly-pruned, fused-kernel, pooled) engine across a K sweep,
// verifying on every run that the two produce bit-identical
// assignments and SSE — a divergence is a hard failure (non-zero
// exit), which is what the CI bench-smoke job keys on. A second table
// ablates the accelerated engine's representation (sparse CSR vs
// dense) against its instruction set (runtime-dispatched AVX2/FMA vs
// pinned scalar), since the cohort VSM is the sparse regime the CSR
// path targets. Also keeps the original A1 reference points (kd-tree
// filtering K-means, bisecting K-means, init strategies) for context.
//
// Writes BENCH_kmeans.json into the current working directory; run it
// from the repo root to land the file there. Set ADA_BENCH_SMOKE=1 for
// the reduced CI configuration.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/bisecting.h"
#include "cluster/filtering_kmeans.h"
#include "cluster/kmeans.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dataset/synthetic_cohort.h"
#include "transform/simd_kernels.h"
#include "transform/sparse_matrix.h"
#include "transform/vsm.h"

namespace {

using namespace adahealth;

bool SmokeMode() {
  const char* env = std::getenv("ADA_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

transform::Matrix CohortVsm(bool smoke) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    smoke ? dataset::TestScaleConfig()
                          : dataset::PaperScaleConfig())
                    .Generate();
  return transform::BuildVsm(cohort->log);
}

common::Json MachineInfo() {
  common::Json::Object machine;
  machine["hardware_threads"] = static_cast<int64_t>(
      common::ThreadPool::Shared().num_threads());
  machine["pointer_bits"] = static_cast<int64_t>(sizeof(void*) * 8);
#ifdef __VERSION__
  machine["compiler"] = std::string("gcc/clang ") + __VERSION__;
#endif
#ifdef NDEBUG
  machine["build"] = "release";
#else
  machine["build"] = "debug";
#endif
  return common::Json(std::move(machine));
}

struct EngineRun {
  double millis = 0.0;
  cluster::Clustering clustering;
};

EngineRun Finish(common::StatusOr<cluster::Clustering> clustering,
                 double millis, int32_t k) {
  if (!clustering.ok()) {
    std::printf("k-means failed (k=%d): %s\n", k,
                clustering.status().ToString().c_str());
    std::exit(1);
  }
  EngineRun run;
  run.millis = millis;
  run.clustering = std::move(clustering).value();
  return run;
}

EngineRun TimeEngine(const transform::Matrix& vsm, int32_t k, uint64_t seed,
                     cluster::KMeansEngine engine) {
  cluster::KMeansOptions options;
  options.k = k;
  options.seed = seed;
  options.engine = engine;
  common::WallTimer timer;
  auto clustering = cluster::RunKMeans(vsm, options);
  return Finish(std::move(clustering), timer.ElapsedSeconds() * 1e3, k);
}

/// One accelerated run with the representation pinned (sparse runs on
/// the pre-built CSR form, so conversion cost is not in the timing)
/// and the SIMD dispatch pinned to scalar when `scalar` asks for it.
EngineRun TimeVariant(const transform::Matrix& vsm,
                      const transform::CsrMatrix& csr, int32_t k,
                      uint64_t seed, bool sparse, bool scalar) {
  cluster::KMeansOptions options;
  options.k = k;
  options.seed = seed;
  options.engine = cluster::KMeansEngine::kAccelerated;
  if (scalar) {
    transform::simd::internal::SetIsaForTesting(
        transform::simd::IsaLevel::kScalar);
  }
  common::WallTimer timer;
  common::StatusOr<cluster::Clustering> clustering =
      common::InternalError("not run");
  if (sparse) {
    options.representation = cluster::KMeansRepresentation::kSparse;
    clustering = cluster::RunKMeans(csr, options);
  } else {
    options.representation = cluster::KMeansRepresentation::kDense;
    clustering = cluster::RunKMeans(vsm, options);
  }
  const double millis = timer.ElapsedSeconds() * 1e3;
  if (scalar) transform::simd::internal::ResetIsaForTesting();
  return Finish(std::move(clustering), millis, k);
}

bool Identical(const cluster::Clustering& a, const cluster::Clustering& b) {
  return a.assignments == b.assignments && a.sse == b.sse &&
         a.iterations == b.iterations;
}

int Run() {
  const bool smoke = SmokeMode();
  const transform::Matrix vsm = CohortVsm(smoke);
  const transform::CsrMatrix csr = transform::CsrMatrix::FromDense(vsm);
  const double density = csr.Density();
  const char* isa = transform::simd::IsaName(transform::simd::ActiveIsa());
  const std::vector<int32_t> ks =
      smoke ? std::vector<int32_t>{4, 8}
            : std::vector<int32_t>{2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<uint64_t> seeds =
      smoke ? std::vector<uint64_t>{20160516}
            : std::vector<uint64_t>{20160516, 7, 42};

  std::printf(
      "=== Ablation A1: k-means engines (%zu x %zu VSM, %.2f%% nnz, "
      "isa=%s%s) ===\n",
      vsm.rows(), vsm.cols(), density * 100.0, isa,
      smoke ? ", smoke config" : "");
  std::printf("%-4s %-12s %-11s %-11s %-8s %-6s %-14s %s\n", "K", "seed",
              "naive(ms)", "accel(ms)", "speedup", "iters", "skipped",
              "identical");

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::Json::Array results;
  common::Json::Array ablation;
  bool all_identical = true;
  double log_speedup_sum = 0.0;
  double min_speedup = 0.0;
  size_t runs = 0;
  double log_ablation_sum = 0.0;
  size_t ablation_runs = 0;
  for (int32_t k : ks) {
    for (uint64_t seed : seeds) {
      EngineRun naive =
          TimeEngine(vsm, k, seed, cluster::KMeansEngine::kNaive);
      metrics.Reset();
      EngineRun accel =
          TimeEngine(vsm, k, seed, cluster::KMeansEngine::kAccelerated);
      const int64_t skipped =
          metrics.GetCounter("kmeans/skipped_distance_checks").value();
      const int64_t recomputes =
          metrics.GetCounter("kmeans/bound_recomputes").value();
      const int64_t chunks =
          metrics.GetCounter("kmeans/parallel_chunks").value();
      const bool went_sparse =
          metrics.GetCounter("kmeans/sparse_runs").value() > 0;

      const bool identical = Identical(naive.clustering, accel.clustering);
      all_identical = all_identical && identical;
      const double speedup =
          accel.millis > 0.0 ? naive.millis / accel.millis : 0.0;
      if (speedup > 0.0) {
        log_speedup_sum += std::log(speedup);
        min_speedup = runs == 0 ? speedup : std::min(min_speedup, speedup);
        ++runs;
      }
      std::printf("%-4d %-12llu %-11.1f %-11.1f %-8.2f %-6d %-14lld %s\n",
                  k, static_cast<unsigned long long>(seed), naive.millis,
                  accel.millis, speedup, accel.clustering.iterations,
                  static_cast<long long>(skipped),
                  identical ? "yes" : "NO  <-- DIVERGENCE");

      common::Json::Object row;
      row["k"] = static_cast<int64_t>(k);
      row["seed"] = static_cast<int64_t>(seed);
      row["naive_ms"] = naive.millis;
      row["accel_ms"] = accel.millis;
      row["speedup"] = speedup;
      row["sse"] = accel.clustering.sse;
      row["iterations"] =
          static_cast<int64_t>(accel.clustering.iterations);
      row["identical"] = identical;
      row["representation"] = went_sparse ? "sparse" : "dense";
      row["skipped_distance_checks"] = skipped;
      row["bound_recomputes"] = recomputes;
      row["parallel_chunks"] = chunks;
      results.push_back(common::Json(std::move(row)));

      // Representation x ISA ablation of the accelerated engine (first
      // seed only): sparse CSR vs dense, dispatched SIMD vs pinned
      // scalar. dense+scalar is the engine as it existed before the
      // sparse/SIMD work; sparse+simd is today's default on this VSM.
      if (seed != seeds[0]) continue;
      struct Variant {
        const char* name;
        bool sparse;
        bool scalar;
      };
      const Variant variants[] = {
          {"dense+scalar", false, true},
          {"dense+simd", false, false},
          {"sparse+scalar", true, true},
          {"sparse+simd", true, false},
      };
      double dense_scalar_ms = 0.0;
      for (const Variant& variant : variants) {
        EngineRun run =
            TimeVariant(vsm, csr, k, seed, variant.sparse, variant.scalar);
        const bool variant_identical =
            Identical(naive.clustering, run.clustering);
        all_identical = all_identical && variant_identical;
        if (!variant.sparse && variant.scalar) dense_scalar_ms = run.millis;
        if (variant.sparse && !variant.scalar && run.millis > 0.0 &&
            dense_scalar_ms > 0.0) {
          log_ablation_sum += std::log(dense_scalar_ms / run.millis);
          ++ablation_runs;
        }
        std::printf("     %-16s %-11.1f %-8.2f %s\n", variant.name,
                    run.millis,
                    run.millis > 0.0 ? naive.millis / run.millis : 0.0,
                    variant_identical ? "yes" : "NO  <-- DIVERGENCE");
        common::Json::Object arow;
        arow["k"] = static_cast<int64_t>(k);
        arow["seed"] = static_cast<int64_t>(seed);
        arow["variant"] = std::string(variant.name);
        arow["representation"] = variant.sparse ? "sparse" : "dense";
        arow["isa"] = variant.scalar ? "scalar" : isa;
        arow["millis"] = run.millis;
        arow["speedup_vs_naive"] =
            run.millis > 0.0 ? naive.millis / run.millis : 0.0;
        arow["identical"] = variant_identical;
        ablation.push_back(common::Json(std::move(arow)));
      }
    }
  }
  const double geomean_speedup =
      runs > 0 ? std::exp(log_speedup_sum / static_cast<double>(runs)) : 0.0;
  const double ablation_geomean =
      ablation_runs > 0
          ? std::exp(log_ablation_sum / static_cast<double>(ablation_runs))
          : 0.0;
  std::printf("geomean speedup: %.2fx (min %.2fx); sparse+simd vs "
              "dense+scalar accel: %.2fx\n",
              geomean_speedup, min_speedup, ablation_geomean);

  // Reference points: the kd-tree filtering engine and bisecting
  // K-means at the paper's K = 8 (full mode only; they are not part of
  // the identity contract).
  common::Json::Array reference;
  if (!smoke) {
    {
      cluster::KMeansOptions options;
      options.k = 8;
      options.seed = 20160516;
      common::WallTimer timer;
      auto clustering = cluster::RunFilteringKMeans(vsm, options);
      if (clustering.ok()) {
        common::Json::Object row;
        row["algorithm"] = "filtering_kmeans";
        row["millis"] = timer.ElapsedSeconds() * 1e3;
        row["sse"] = clustering->sse;
        reference.push_back(common::Json(std::move(row)));
      }
    }
    {
      cluster::BisectingOptions options;
      options.k = 8;
      options.seed = 20160516;
      common::WallTimer timer;
      auto clustering = cluster::RunBisectingKMeans(vsm, options);
      if (clustering.ok()) {
        common::Json::Object row;
        row["algorithm"] = "bisecting_kmeans";
        row["millis"] = timer.ElapsedSeconds() * 1e3;
        row["sse"] = clustering->sse;
        reference.push_back(common::Json(std::move(row)));
      }
    }
    // Initialization ablation: k-means++ vs random seeding at the
    // paper's K = 8 (iterations to convergence at equal-quality SSE).
    for (int init = 0; init < 2; ++init) {
      cluster::KMeansOptions options;
      options.k = 8;
      options.seed = 20160516;
      options.init = init == 0 ? cluster::KMeansInit::kRandom
                               : cluster::KMeansInit::kKMeansPlusPlus;
      common::WallTimer timer;
      auto clustering = cluster::RunKMeans(vsm, options);
      if (clustering.ok()) {
        common::Json::Object row;
        row["algorithm"] =
            init == 0 ? "init_random" : "init_kmeans++";
        row["millis"] = timer.ElapsedSeconds() * 1e3;
        row["sse"] = clustering->sse;
        row["iterations"] =
            static_cast<int64_t>(clustering->iterations);
        reference.push_back(common::Json(std::move(row)));
      }
    }
  }

  common::Json::Object doc;
  doc["bench"] = "kmeans_engines";
  {
    common::Json::Object config;
    config["rows"] = static_cast<int64_t>(vsm.rows());
    config["cols"] = static_cast<int64_t>(vsm.cols());
    config["nnz_density"] = density;
    config["dispatched_isa"] = std::string(isa);
    config["smoke"] = smoke;
    common::Json::Array k_array;
    for (int32_t k : ks) k_array.push_back(static_cast<int64_t>(k));
    config["ks"] = common::Json(std::move(k_array));
    doc["config"] = common::Json(std::move(config));
  }
  doc["machine"] = MachineInfo();
  doc["results"] = common::Json(std::move(results));
  doc["ablation"] = common::Json(std::move(ablation));
  doc["reference"] = common::Json(std::move(reference));
  {
    common::Json::Object summary;
    summary["geomean_speedup"] = geomean_speedup;
    summary["min_speedup"] = min_speedup;
    summary["ablation_geomean_sparse_simd_vs_dense_scalar"] =
        ablation_geomean;
    summary["nnz_density"] = density;
    summary["dispatched_isa"] = std::string(isa);
    summary["all_identical"] = all_identical;
    doc["summary"] = common::Json(std::move(summary));
  }

  const std::string path = "BENCH_kmeans.json";
  std::ofstream out(path);
  out << common::Json(std::move(doc)).Pretty() << "\n";
  if (!out) {
    std::printf("failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("[kmeans_ablation] results written to %s\n", path.c_str());

  if (!all_identical) {
    std::printf("[kmeans_ablation] FAIL: accelerated engine diverged from "
                "naive Lloyd\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
