#include "patterns/transactions.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace adahealth {
namespace patterns {

TransactionDb BuildTransactions(const dataset::ExamLog& log) {
  TransactionDb db;
  db.num_items = log.num_exam_types();
  std::vector<std::set<ItemId>> item_sets(log.num_patients());
  for (const auto& record : log.records()) {
    item_sets[static_cast<size_t>(record.patient)].insert(record.exam_type);
  }
  db.transactions.reserve(item_sets.size());
  for (const auto& items : item_sets) {
    db.transactions.emplace_back(items.begin(), items.end());
  }
  return db;
}

TransactionDb BuildTransactionsAtLevel(const dataset::ExamLog& log,
                                       const dataset::Taxonomy& taxonomy,
                                       int level) {
  ADA_CHECK_GE(level, 0);
  ADA_CHECK_LE(level, 2);
  ADA_CHECK_EQ(taxonomy.num_leaves(), log.num_exam_types());
  TransactionDb db;
  db.num_items = taxonomy.num_nodes();
  std::vector<std::set<ItemId>> item_sets(log.num_patients());
  for (const auto& record : log.records()) {
    ItemId item = record.exam_type;
    if (level >= 1) {
      item = taxonomy.GroupNode(taxonomy.GroupOfLeaf(record.exam_type));
    }
    if (level == 2) {
      item = taxonomy.CategoryNode(taxonomy.CategoryOfLeaf(record.exam_type));
    }
    item_sets[static_cast<size_t>(record.patient)].insert(item);
  }
  db.transactions.reserve(item_sets.size());
  for (const auto& items : item_sets) {
    db.transactions.emplace_back(items.begin(), items.end());
  }
  return db;
}

void SortCanonical(std::vector<FrequentItemset>& itemsets) {
  std::sort(itemsets.begin(), itemsets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

}  // namespace patterns
}  // namespace adahealth
