#include "kdb/aggregate.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

Collection MakeCollection() {
  Collection collection("items");
  struct Row {
    const char* kind;
    double quality;
  };
  const Row rows[] = {{"cluster", 0.9}, {"cluster", 0.5}, {"rule", 0.7},
                      {"rule", 0.3},    {"itemset", 0.6}};
  for (const Row& row : rows) {
    Document document;
    document.Set("kind", Json(row.kind));
    document.Set("quality", Json(row.quality));
    collection.Insert(std::move(document));
  }
  // One document without the fields.
  collection.Insert(Document());
  return collection;
}

TEST(GroupCountTest, CountsPerValue) {
  Collection collection = MakeCollection();
  auto counts = GroupCount(collection, "kind");
  EXPECT_EQ(counts["\"cluster\""], 2);
  EXPECT_EQ(counts["\"rule\""], 2);
  EXPECT_EQ(counts["\"itemset\""], 1);
  EXPECT_EQ(counts["<missing>"], 1);
}

TEST(GroupCountTest, RespectsFilter) {
  Collection collection = MakeCollection();
  auto counts = GroupCount(collection, "kind",
                           Query().Where("quality", QueryOp::kGe,
                                         Json(0.6)));
  EXPECT_EQ(counts["\"cluster\""], 1);
  EXPECT_EQ(counts["\"rule\""], 1);
  EXPECT_EQ(counts["\"itemset\""], 1);
  EXPECT_EQ(counts.count("<missing>"), 0u);
}

TEST(AggregateTest, NumericStatistics) {
  Collection collection = MakeCollection();
  FieldStats stats = Aggregate(collection, "quality");
  EXPECT_EQ(stats.count, 5);
  EXPECT_NEAR(stats.sum, 3.0, 1e-12);
  EXPECT_NEAR(stats.mean, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min, 0.3);
  EXPECT_DOUBLE_EQ(stats.max, 0.9);
}

TEST(AggregateTest, FilteredStatistics) {
  Collection collection = MakeCollection();
  FieldStats stats = Aggregate(collection, "quality",
                               Query().Eq("kind", Json("rule")));
  EXPECT_EQ(stats.count, 2);
  EXPECT_NEAR(stats.mean, 0.5, 1e-12);
}

TEST(AggregateTest, EmptyMatchGivesZeroStats) {
  Collection collection = MakeCollection();
  FieldStats stats = Aggregate(collection, "quality",
                               Query().Eq("kind", Json("ghost")));
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(SortedFindTest, AscendingAndDescending) {
  Collection collection = MakeCollection();
  auto ascending = SortedFind(collection, Query::All(), "quality");
  // 5 documents with quality (missing-field document last).
  ASSERT_EQ(ascending.size(), 6u);
  EXPECT_DOUBLE_EQ(ascending[0].Get("quality")->AsDouble(), 0.3);
  EXPECT_DOUBLE_EQ(ascending[4].Get("quality")->AsDouble(), 0.9);
  EXPECT_EQ(ascending[5].Get("quality"), nullptr);

  auto descending =
      SortedFind(collection, Query::All(), "quality", true);
  EXPECT_DOUBLE_EQ(descending[0].Get("quality")->AsDouble(), 0.9);
  EXPECT_EQ(descending[5].Get("quality"), nullptr);  // Missing last.
}

TEST(SortedFindTest, LimitTruncates) {
  Collection collection = MakeCollection();
  auto top2 = SortedFind(collection, Query::All(), "quality", true, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[0].Get("quality")->AsDouble(), 0.9);
  EXPECT_DOUBLE_EQ(top2[1].Get("quality")->AsDouble(), 0.7);
}

TEST(SortedFindTest, StringSortIsLexicographic) {
  Collection collection = MakeCollection();
  auto by_kind = SortedFind(collection, Query::All(), "kind");
  ASSERT_GE(by_kind.size(), 5u);
  EXPECT_EQ(by_kind[0].Get("kind")->AsString(), "cluster");
  EXPECT_EQ(by_kind[4].Get("kind")->AsString(), "rule");
}

TEST(SortedFindTest, FilterApplies) {
  Collection collection = MakeCollection();
  auto rules = SortedFind(collection, Query().Eq("kind", Json("rule")),
                          "quality", true);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_DOUBLE_EQ(rules[0].Get("quality")->AsDouble(), 0.7);
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
