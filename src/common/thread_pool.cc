#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace adahealth {
namespace common {

ThreadPool::ThreadPool(size_t num_threads) {
  ADA_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ADA_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t workers = pool.num_threads();
  const size_t chunk = std::max<size_t>(1, (total + workers - 1) / workers);
  std::atomic<size_t> pending{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t scheduled = 0;
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    ++scheduled;
  }
  pending.store(scheduled);
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    const size_t chunk_end = std::min(end, chunk_begin + chunk);
    pool.Schedule([&, chunk_begin, chunk_end] {
      for (size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      if (pending.fetch_sub(1) == 1) {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending.load() == 0; });
}

}  // namespace common
}  // namespace adahealth
