// Quantifies the paper's claim C1 (§III): "The larger the number of
// previous user interactions, the more accurate the classification
// model will be."
//
// Protocol: a persona oracle labels (dataset, end-goal) pairs drawn
// from a pool of varied synthetic cohorts; the end-goal interest
// classifier is trained on growing feedback prefixes and evaluated on
// a fixed held-out set. Printed series: interactions -> accuracy.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/endgoal.h"
#include "core/feedback_sim.h"
#include "dataset/synthetic_cohort.h"

namespace {

using namespace adahealth;

struct Example {
  stats::MetaFeatures features;
  core::EndGoal goal;
  core::Interest label;
};

int Run() {
  common::WallTimer timer;
  std::printf("=== Claim C1: end-goal interest learning curve ===\n");

  core::PersonaConfig persona = core::ClinicalResearcherPersona();
  persona.noise_stddev = 0.15;
  core::FeedbackSimulator oracle(persona, 2016);
  common::Rng rng(7495617);

  // Pool of varied cohorts -> labeled examples.
  std::vector<Example> pool;
  const int kNumDatasets = 120;
  for (int d = 0; d < kNumDatasets; ++d) {
    dataset::CohortConfig config = dataset::TestScaleConfig();
    config.num_patients = 100 + static_cast<int32_t>(rng.UniformInt(0, 500));
    config.mean_records_per_patient = rng.UniformDouble(2.5, 20.0);
    config.zipf_exponent = rng.UniformDouble(0.2, 1.6);
    config.num_profiles = 2 + static_cast<int32_t>(rng.UniformInt(0, 2));
    config.seed = rng.NextUint64();
    auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
    if (!cohort.ok()) return 1;
    stats::MetaFeatures features = stats::ComputeMetaFeatures(cohort->log);
    for (int32_t g = 0; g < core::kNumEndGoals; ++g) {
      core::EndGoal goal = static_cast<core::EndGoal>(g);
      pool.push_back({features, goal, oracle.LabelGoal(features, goal)});
    }
  }
  // Shuffle deterministically and split 80/20.
  std::vector<size_t> order(pool.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t split = pool.size() * 4 / 5;

  std::printf("pool: %zu labeled (dataset, goal) pairs, %zu held out\n\n",
              pool.size(), pool.size() - split);
  std::printf("%-14s %-10s\n", "interactions", "accuracy");

  double first_accuracy = -1.0;
  double last_accuracy = -1.0;
  for (size_t interactions : {16u, 32u, 64u, 128u, 256u, 480u}) {
    size_t train_count = std::min(interactions, split);
    kdb::Collection feedback("feedback");
    for (size_t i = 0; i < train_count; ++i) {
      const Example& example = pool[order[i]];
      feedback.Insert(core::MakeGoalFeedbackDocument(
          common::StrFormat("d%zu", i), persona.name, example.features,
          example.goal, example.label));
    }
    core::EndGoalEngine engine;
    if (!engine.TrainFromFeedback(feedback).ok()) {
      std::printf("%-14zu (training failed: too few labels)\n",
                  interactions);
      continue;
    }
    int correct = 0;
    for (size_t i = split; i < pool.size(); ++i) {
      const Example& example = pool[order[i]];
      auto predicted =
          engine.PredictInterest(example.features, example.goal);
      if (predicted.ok() && predicted.value() == example.label) ++correct;
    }
    double accuracy =
        static_cast<double>(correct) / static_cast<double>(pool.size() -
                                                           split);
    if (first_accuracy < 0.0) first_accuracy = accuracy;
    last_accuracy = accuracy;
    std::printf("%-14zu %-10.3f\n", train_count, accuracy);
  }

  std::printf("\nclaim check: accuracy(480) %.3f %s accuracy(16) %.3f "
              "-> %s\n",
              last_accuracy, last_accuracy > first_accuracy ? ">" : "<=",
              first_accuracy,
              last_accuracy > first_accuracy
                  ? "more interactions give a more accurate model, as "
                    "the paper claims"
                  : "claim NOT reproduced");
  std::printf("[endgoal_learning] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
