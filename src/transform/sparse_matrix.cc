#include "transform/sparse_matrix.h"

#include <cmath>

#include "common/check.h"

namespace adahealth {
namespace transform {

void CsrMatrix::Builder::AddRow(const std::vector<SparseEntry>& entries) {
  uint32_t previous = 0;
  bool first = true;
  for (const SparseEntry& entry : entries) {
    ADA_CHECK_LT(entry.column, cols_);
    if (!first) ADA_CHECK_GT(entry.column, previous);
    previous = entry.column;
    first = false;
    if (entry.value != 0.0) entries_.push_back(entry);
  }
  row_offsets_.push_back(entries_.size());
}

CsrMatrix CsrMatrix::Builder::Build() && {
  return CsrMatrix(cols_, std::move(row_offsets_), std::move(entries_));
}

std::span<const SparseEntry> CsrMatrix::Row(size_t row) const {
  ADA_CHECK_LT(row, rows());
  return std::span<const SparseEntry>(
      entries_.data() + row_offsets_[row],
      row_offsets_[row + 1] - row_offsets_[row]);
}

Matrix CsrMatrix::ToDense() const {
  Matrix dense(rows(), cols_);
  for (size_t r = 0; r < rows(); ++r) {
    for (const SparseEntry& entry : Row(r)) {
      dense.At(r, entry.column) = entry.value;
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense) {
  Builder builder(dense.cols());
  std::vector<SparseEntry> row_entries;
  for (size_t r = 0; r < dense.rows(); ++r) {
    row_entries.clear();
    std::span<const double> row = dense.Row(r);
    for (size_t c = 0; c < dense.cols(); ++c) {
      if (row[c] != 0.0) {
        row_entries.push_back({static_cast<uint32_t>(c), row[c]});
      }
    }
    builder.AddRow(row_entries);
  }
  return std::move(builder).Build();
}

double CsrMatrix::Density() const {
  double cells = static_cast<double>(rows()) * static_cast<double>(cols_);
  return cells > 0.0 ? static_cast<double>(entries_.size()) / cells : 0.0;
}

double SparseDot(std::span<const SparseEntry> a,
                 std::span<const SparseEntry> b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].column == b[j].column) {
      sum += a[i].value * b[j].value;
      ++i;
      ++j;
    } else if (a[i].column < b[j].column) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SparseCosineSimilarity(std::span<const SparseEntry> a,
                              std::span<const SparseEntry> b) {
  double norm_a = 0.0;
  for (const SparseEntry& entry : a) norm_a += entry.value * entry.value;
  double norm_b = 0.0;
  for (const SparseEntry& entry : b) norm_b += entry.value * entry.value;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return SparseDot(a, b) / std::sqrt(norm_a * norm_b);
}

}  // namespace transform
}  // namespace adahealth
