// Named fault-injection points for exercising error paths.
//
// Production code marks the places where the outside world can fail
// (file I/O, stage boundaries, task execution) with
//
//   ADA_RETURN_IF_ERROR(ADA_FAILPOINT("kdb.storage.write"));
//
// Normally the failpoint is dormant and evaluates to OK at the cost of
// one mutex-guarded map lookup. Tests (or an operator, via the
// ADA_FAILPOINTS environment variable) arm points with a trigger:
//
//   spec      := point '=' action (';' point '=' action)*
//   action    := 'off' | trigger modifiers
//   trigger   := 'error(' CODE [',' message] ')' | 'delay(' millis ')'
//   modifiers := ['*' count] ['@' nth]
//
//   CODE is a canonical status-code name (UNAVAILABLE, DATA_LOSS, ...).
//   '*N'  limits the trigger to N activations (default: unlimited);
//   '@N'  arms it starting from the N-th hit, 1-based (default: 1).
//
// Examples:
//   kdb.storage.rename=error(UNAVAILABLE)*1      one-shot rename failure
//   session.optimizer=error(INTERNAL)@3          fail from the 3rd hit on
//   kdb.storage.fsync=delay(50)*2                50 ms stall, twice
//
// Compiling with -DADA_FAILPOINTS_DISABLED turns every ADA_FAILPOINT
// into a constant OkStatus() with no registry access, for builds where
// even the dormant lookup is unwanted.
#ifndef ADAHEALTH_COMMON_FAILPOINT_H_
#define ADAHEALTH_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace adahealth {
namespace common {

/// What an armed failpoint does when it fires.
struct FailpointConfig {
  enum class Kind { kError, kDelay };

  Kind kind = Kind::kError;
  /// kError: the status returned by Evaluate().
  StatusCode code = StatusCode::kUnavailable;
  std::string message;
  /// kDelay: milliseconds to sleep before returning OK.
  int64_t delay_millis = 0;
  /// Maximum number of activations; < 0 means unlimited.
  int64_t max_activations = -1;
  /// First hit (1-based) on which the trigger is armed.
  int64_t first_hit = 1;
};

/// Thread-safe registry of armed failpoints. Dormant points (the
/// common case) cost one lock + map lookup per Evaluate.
class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// The process-wide registry consulted by ADA_FAILPOINT. On first
  /// access it arms any points described by the ADA_FAILPOINTS
  /// environment variable (a malformed spec is logged and ignored so a
  /// bad operator setting cannot take the service down).
  static FailpointRegistry& Default();

  /// Parses one action clause (e.g. "error(UNAVAILABLE,disk full)*1@2").
  [[nodiscard]] static StatusOr<FailpointConfig> ParseAction(
      std::string_view action);

  /// Parses a full spec ("point=action;point=action") and arms every
  /// clause, replacing the registry's previous configuration.
  /// INVALID_ARGUMENT pinpointing the offending clause on bad grammar.
  [[nodiscard]] Status Configure(std::string_view spec)
      ADA_EXCLUDES(mutex_);

  /// Arms (or re-arms) a single point, resetting its hit counter.
  void Arm(const std::string& point, FailpointConfig config)
      ADA_EXCLUDES(mutex_);

  /// Disarms a point; evaluating it is a no-op again.
  void Disarm(const std::string& point) ADA_EXCLUDES(mutex_);

  /// Disarms everything and forgets all hit counters.
  void Clear() ADA_EXCLUDES(mutex_);

  /// One hit of `point`: bumps its hit counter and, when the trigger
  /// is armed for this hit, sleeps (delay) or returns the configured
  /// error. Dormant or exhausted points return OK.
  [[nodiscard]] Status Evaluate(std::string_view point)
      ADA_EXCLUDES(mutex_);

  /// Total hits observed for `point` (armed or not).
  [[nodiscard]] int64_t hits(const std::string& point) const
      ADA_EXCLUDES(mutex_);

  /// Names of currently armed points, sorted.
  [[nodiscard]] std::vector<std::string> ArmedPoints() const
      ADA_EXCLUDES(mutex_);

 private:
  struct ArmedPoint {
    FailpointConfig config;
    int64_t activations = 0;
  };

  mutable Mutex mutex_;
  std::map<std::string, ArmedPoint, std::less<>> armed_
      ADA_GUARDED_BY(mutex_);
  std::map<std::string, int64_t, std::less<>> hit_counts_
      ADA_GUARDED_BY(mutex_);
};

/// RAII helper for tests: arms `point` on construction, disarms it on
/// destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string point, FailpointConfig config)
      : point_(std::move(point)) {
    FailpointRegistry::Default().Arm(point_, std::move(config));
  }
  ~ScopedFailpoint() { FailpointRegistry::Default().Disarm(point_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string point_;
};

/// Convenience: a one-shot error trigger returning `code`.
[[nodiscard]] FailpointConfig OneShotError(
    StatusCode code = StatusCode::kUnavailable, std::string message = "");

}  // namespace common
}  // namespace adahealth

#ifdef ADA_FAILPOINTS_DISABLED
#define ADA_FAILPOINT(point) ::adahealth::common::OkStatus()
#else
#define ADA_FAILPOINT(point) \
  ::adahealth::common::FailpointRegistry::Default().Evaluate(point)
#endif

#endif  // ADAHEALTH_COMMON_FAILPOINT_H_
