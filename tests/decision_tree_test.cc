#include "ml/decision_tree.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace ml {
namespace {

using transform::Matrix;

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Matrix features(6, 1);
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1};
  for (size_t i = 0; i < 6; ++i) {
    features.At(i, 0) = static_cast<double>(i);
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(features, labels, 2).ok());
  EXPECT_EQ(tree.Predict(std::vector<double>{0.5}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{4.5}), 1);
  EXPECT_EQ(tree.Predict(std::vector<double>{2.4}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{2.6}), 1);
}

TEST(DecisionTreeTest, FitsAsymmetricXorWithDepthTwo) {
  // XOR labels with unequal corner multiplicities so the greedy first
  // split has strictly positive Gini gain (pure XOR famously has zero
  // first-level gain for any axis-aligned split).
  struct Corner {
    double x;
    double y;
    int copies;
  };
  const Corner corners[] = {
      {0.0, 0.0, 4}, {1.0, 1.0, 2}, {0.0, 1.0, 2}, {1.0, 0.0, 2}};
  size_t total = 0;
  for (const Corner& corner : corners) {
    total += static_cast<size_t>(corner.copies);
  }
  Matrix features(total, 2);
  std::vector<int32_t> labels;
  size_t row = 0;
  for (const Corner& corner : corners) {
    for (int repeat = 0; repeat < corner.copies; ++repeat) {
      features.At(row, 0) = corner.x;
      features.At(row, 1) = corner.y;
      labels.push_back(static_cast<int32_t>(corner.x) ^
                       static_cast<int32_t>(corner.y));
      ++row;
    }
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(features, labels, 2).ok());
  std::vector<int32_t> predicted = tree.PredictBatch(features);
  EXPECT_EQ(predicted, labels);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Matrix features(5, 2, 1.0);
  std::vector<int32_t> labels{1, 1, 1, 1, 1};
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(features, labels, 2).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<double>{9.0, 9.0}), 1);
}

TEST(DecisionTreeTest, MaxDepthZeroGivesMajorityVote) {
  Matrix features(5, 1);
  for (size_t i = 0; i < 5; ++i) features.At(i, 0) = static_cast<double>(i);
  std::vector<int32_t> labels{0, 0, 0, 1, 1};
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTreeClassifier tree(options);
  ASSERT_TRUE(tree.Fit(features, labels, 2).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  for (double x : {0.0, 4.0}) {
    EXPECT_EQ(tree.Predict(std::vector<double>{x}), 0);
  }
}

TEST(DecisionTreeTest, MinSamplesLeafPreventsTinySplits) {
  Matrix features(10, 1);
  std::vector<int32_t> labels;
  for (size_t i = 0; i < 10; ++i) {
    features.At(i, 0) = static_cast<double>(i);
    labels.push_back(i == 9 ? 1 : 0);  // One outlier.
  }
  DecisionTreeOptions options;
  options.min_samples_leaf = 3;
  DecisionTreeClassifier tree(options);
  ASSERT_TRUE(tree.Fit(features, labels, 2).ok());
  // Splitting off the single outlier is forbidden; any allowed split
  // leaves the right child majority-0, so everything predicts 0.
  EXPECT_EQ(tree.Predict(std::vector<double>{9.0}), 0);
}

TEST(DecisionTreeTest, GeneralizesOnBlobs) {
  test::Blobs train = test::MakeBlobs(
      {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}}, 50, 0.7, 51);
  test::Blobs test_set = test::MakeBlobs(
      {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}}, 30, 0.7, 52);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(train.points, train.labels, 3).ok());
  std::vector<int32_t> predicted = tree.PredictBatch(test_set.points);
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == test_set.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(DecisionTreeTest, RefitReplacesModel) {
  Matrix features(4, 1);
  for (size_t i = 0; i < 4; ++i) features.At(i, 0) = static_cast<double>(i);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(features, {0, 0, 1, 1}, 2).ok());
  EXPECT_EQ(tree.Predict(std::vector<double>{3.0}), 1);
  ASSERT_TRUE(tree.Fit(features, {1, 1, 0, 0}, 2).ok());
  EXPECT_EQ(tree.Predict(std::vector<double>{3.0}), 0);
}

TEST(DecisionTreeTest, RejectsInvalidInput) {
  Matrix features(3, 1, 1.0);
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Fit(features, {0, 1}, 2).ok());         // Size mismatch.
  EXPECT_FALSE(tree.Fit(features, {0, 1, 5}, 2).ok());      // Label range.
  EXPECT_FALSE(tree.Fit(features, {0, 1, 1}, 0).ok());      // num_classes.
  EXPECT_FALSE(tree.Fit(Matrix(), {}, 2).ok());             // Empty.
  DecisionTreeOptions bad;
  bad.min_samples_split = 1;
  DecisionTreeClassifier bad_tree(bad);
  EXPECT_FALSE(bad_tree.Fit(features, {0, 1, 1}, 2).ok());
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
