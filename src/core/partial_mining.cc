#include "core/partial_mining.h"

#include <algorithm>
#include <cmath>

#include "cluster/quality.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "transform/feature_select.h"
#include "transform/sampling.h"

namespace adahealth {
namespace core {

using common::InvalidArgumentError;
using common::StatusOr;
using dataset::ExamLog;

namespace {

common::Status ValidateOptions(const PartialMiningOptions& options) {
  if (options.fractions.empty()) {
    return InvalidArgumentError("empty fraction schedule");
  }
  for (size_t i = 0; i < options.fractions.size(); ++i) {
    if (options.fractions[i] <= 0.0 || options.fractions[i] > 1.0) {
      return InvalidArgumentError("fractions must be in (0, 1]");
    }
    if (i > 0 && options.fractions[i] <= options.fractions[i - 1]) {
      return InvalidArgumentError("fractions must be strictly increasing");
    }
  }
  if (options.ks.empty()) {
    return InvalidArgumentError("at least one K is required");
  }
  for (int32_t k : options.ks) {
    if (k < 1) return InvalidArgumentError("K values must be >= 1");
  }
  if (options.tolerance < 0.0) {
    return InvalidArgumentError("tolerance must be non-negative");
  }
  if (options.restarts < 1) {
    return InvalidArgumentError("restarts must be >= 1");
  }
  return common::OkStatus();
}

/// Clusters the rows of `mining_vsm` for every K and scores each
/// result with the overall similarity computed on `evaluation_vsm`
/// (row-aligned with mining_vsm). Passing the same matrix twice scores
/// in the mining space; the exam-subset strategy evaluates on the full
/// original space so that quality across subsets is comparable.
StatusOr<std::vector<double>> SimilarityPerK(
    const transform::Matrix& mining_vsm,
    const transform::Matrix& evaluation_vsm,
    const PartialMiningOptions& options) {
  std::vector<double> similarities;
  similarities.reserve(options.ks.size());
  cluster::Clustering previous_best;
  for (int32_t k : options.ks) {
    cluster::KMeansOptions kmeans = options.kmeans;
    kmeans.k = std::min<int32_t>(k, static_cast<int32_t>(mining_vsm.rows()));
    // Best-SSE of `restarts` seeded runs; stable seeds per (K, restart)
    // keep steps comparable. Every K after the first adds one extra
    // run warm-started from the previous K's best solution — it
    // converges in a few cheap pruned passes and can only improve the
    // kept best.
    StatusOr<cluster::Clustering> best =
        common::InternalError("no restart succeeded");
    if (previous_best.k > 0) {
      kmeans.seed = options.kmeans.seed + static_cast<uint64_t>(k) * 7919;
      kmeans.initial_centroids =
          cluster::AdaptCentroids(mining_vsm, previous_best, kmeans.k);
      auto clustering = cluster::RunKMeans(mining_vsm, kmeans);
      if (!clustering.ok()) return clustering.status();
      best = std::move(clustering);
      kmeans.initial_centroids = transform::Matrix();
    }
    for (int32_t restart = 0; restart < options.restarts; ++restart) {
      kmeans.seed = options.kmeans.seed + static_cast<uint64_t>(k) * 7919 +
                    static_cast<uint64_t>(restart) * 104729;
      auto clustering = cluster::RunKMeans(mining_vsm, kmeans);
      if (!clustering.ok()) return clustering.status();
      if (!best.ok() || clustering->sse < best->sse) {
        best = std::move(clustering);
      }
    }
    similarities.push_back(cluster::OverallSimilarity(
        evaluation_vsm, best->assignments, best->k));
    previous_best = std::move(best).value();
  }
  return similarities;
}

double MeanRelativeDiff(const std::vector<double>& step,
                        const std::vector<double>& reference) {
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < step.size(); ++i) {
    if (reference[i] == 0.0) continue;
    total += std::abs(step[i] - reference[i]) / std::abs(reference[i]);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

size_t SelectStep(const std::vector<PartialMiningStep>& steps,
                  double tolerance) {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].mean_relative_diff <= tolerance) return i;
  }
  return steps.size() - 1;
}

}  // namespace

StatusOr<PartialMiningResult> RunExamSubsetPartialMining(
    const ExamLog& log, const PartialMiningOptions& options) {
  common::Status valid = ValidateOptions(options);
  if (!valid.ok()) return valid;
  if (log.num_records() == 0) {
    return InvalidArgumentError("partial mining requires a non-empty log");
  }

  // The full dataset is the comparison baseline; append 1.0 if absent.
  std::vector<double> fractions = options.fractions;
  if (fractions.back() < 1.0) fractions.push_back(1.0);

  auto schedule = transform::BuildVerticalSchedule(log, fractions);
  if (!schedule.ok()) return schedule.status();

  PartialMiningResult result;
  result.ks = options.ks;
  // Every subset's clustering is scored on the full original space:
  // FilterExamTypes preserves all patients, so row i of the reduced
  // VSM is the same patient as row i of the full VSM.
  transform::Matrix full_vsm = BuildVsm(log, options.vsm);
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  std::vector<std::vector<double>> similarities;
  for (const auto& subset : schedule.value()) {
    // A failing non-baseline step is dropped from the schedule (it can
    // simply never be selected); the full-data baseline is the
    // comparison reference and must succeed.
    common::Status injected = ADA_FAILPOINT("partial_mining.step");
    if (!injected.ok()) {
      if (&subset == &schedule.value().back()) return injected;
      metrics.GetCounter("partial_mining/steps_skipped").Increment();
      ADA_LOG(kWarning) << "partial mining: dropping step (fraction "
                        << subset.exam_fraction
                        << "): " << injected.ToString();
      continue;
    }
    common::ScopedTimer step_timer(metrics, "partial_mining/step_seconds");
    ExamLog reduced = log.FilterExamTypes(subset.mask);
    transform::Matrix reduced_vsm = BuildVsm(reduced, options.vsm);
    auto sims = SimilarityPerK(reduced_vsm, full_vsm, options);
    if (!sims.ok()) return sims.status();
    PartialMiningStep step;
    step.fraction = subset.exam_fraction;
    step.record_coverage = subset.record_coverage;
    step.overall_similarity = sims.value();
    similarities.push_back(std::move(sims).value());
    result.steps.push_back(std::move(step));
    metrics.GetCounter("partial_mining/steps").Increment();
  }
  const std::vector<double>& full = similarities.back();
  for (size_t i = 0; i < result.steps.size(); ++i) {
    result.steps[i].mean_relative_diff =
        MeanRelativeDiff(similarities[i], full);
  }
  result.selected_step = SelectStep(result.steps, options.tolerance);
  metrics.GetGauge("partial_mining/selected_fraction")
      .Set(result.steps[result.selected_step].fraction);
  metrics.GetGauge("partial_mining/stop_step")
      .Set(static_cast<double>(result.selected_step));
  return result;
}

StatusOr<PartialMiningResult> RunPatientSubsetPartialMining(
    const ExamLog& log, const PartialMiningOptions& options) {
  common::Status valid = ValidateOptions(options);
  if (!valid.ok()) return valid;
  if (log.num_patients() == 0 || log.num_records() == 0) {
    return InvalidArgumentError("partial mining requires a non-empty log");
  }

  common::Rng rng(options.kmeans.seed + 17);
  auto schedule =
      transform::BuildHorizontalSchedule(log, options.fractions, rng);
  if (!schedule.ok()) return schedule.status();

  PartialMiningResult result;
  result.ks = options.ks;
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  std::vector<std::vector<double>> similarities;
  for (size_t s = 0; s < schedule->size(); ++s) {
    common::ScopedTimer step_timer(metrics, "partial_mining/step_seconds");
    ExamLog reduced = log.FilterPatients((*schedule)[s]);
    transform::Matrix reduced_vsm = BuildVsm(reduced, options.vsm);
    auto sims = SimilarityPerK(reduced_vsm, reduced_vsm, options);
    if (!sims.ok()) return sims.status();
    PartialMiningStep step;
    step.fraction = options.fractions[s];
    step.record_coverage =
        static_cast<double>(reduced.num_records()) /
        static_cast<double>(log.num_records());
    step.overall_similarity = sims.value();
    step.mean_relative_diff =
        s == 0 ? 1.0 : MeanRelativeDiff(sims.value(), similarities.back());
    similarities.push_back(std::move(sims).value());
    result.steps.push_back(std::move(step));
    metrics.GetCounter("partial_mining/steps").Increment();
  }
  result.selected_step = SelectStep(result.steps, options.tolerance);
  metrics.GetGauge("partial_mining/selected_fraction")
      .Set(result.steps[result.selected_step].fraction);
  metrics.GetGauge("partial_mining/stop_step")
      .Set(static_cast<double>(result.selected_step));
  return result;
}

}  // namespace core
}  // namespace adahealth
