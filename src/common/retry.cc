#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/timer.h"

namespace adahealth {
namespace common {

namespace {

/// Stable 64-bit hash of the op name (FNV-1a), mixed into the jitter
/// seed so distinct operations get independent deterministic streams.
uint64_t HashOpName(std::string_view op_name) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : op_name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

bool RetryPolicy::IsRetryable(StatusCode code) const {
  return std::find(retryable_codes.begin(), retryable_codes.end(), code) !=
         retryable_codes.end();
}

Status RetryWithPolicy(const RetryPolicy& policy, std::string_view op_name,
                       const std::function<Status()>& operation) {
  return RetryWithPolicy(policy, op_name, operation, nullptr);
}

Status RetryWithPolicy(const RetryPolicy& policy, std::string_view op_name,
                       const std::function<Status()>& operation,
                       int32_t* attempts_out) {
  MetricsRegistry& metrics = MetricsRegistry::Default();
  const int32_t max_attempts = std::max(1, policy.max_attempts);
  Rng jitter(policy.jitter_seed ^ HashOpName(op_name));
  Status last = OkStatus();
  int32_t attempts = 0;
  for (int32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    attempts = attempt;
    if (attempts_out != nullptr) *attempts_out = attempt;
    metrics.GetCounter("retry_attempts").Increment();
    WallTimer attempt_timer;
    last = operation();
    double elapsed_millis = attempt_timer.ElapsedSeconds() * 1e3;
    if (policy.per_attempt_deadline_millis > 0.0 &&
        elapsed_millis > policy.per_attempt_deadline_millis) {
      last = DeadlineExceededError(
          std::string(op_name) + ": attempt " + std::to_string(attempt) +
          " overran its deadline (" + std::to_string(elapsed_millis) +
          " ms > " + std::to_string(policy.per_attempt_deadline_millis) +
          " ms)");
    }
    if (last.ok()) return last;
    if (!policy.IsRetryable(last.code()) || attempt == max_attempts) break;
    double backoff = policy.initial_backoff_millis;
    for (int32_t i = 1; i < attempt; ++i) backoff *= policy.backoff_multiplier;
    backoff = std::min(backoff, policy.max_backoff_millis);
    backoff *= 1.0 + policy.jitter_fraction * jitter.UniformDouble(-1.0, 1.0);
    backoff = std::max(0.0, backoff);
    ADA_LOG(kWarning) << "retrying '" << op_name << "' (attempt " << attempt
                      << "/" << max_attempts << " failed: " << last.ToString()
                      << "), backing off " << backoff << " ms";
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
  }
  metrics.GetCounter("retry_giveups").Increment();
  return Status(last.code(), std::string(op_name) + " failed after " +
                                 std::to_string(attempts) +
                                 " attempt(s): " + last.message());
}

}  // namespace common
}  // namespace adahealth
