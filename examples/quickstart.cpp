// Quickstart: run the whole ADA-HEALTH pipeline on a synthetic
// diabetic cohort in ~30 lines of user code.
//
//   $ ./quickstart
//
// The AnalysisSession drives every architecture block (Figure 1 of the
// paper) and returns a ranked, manageable set of knowledge items.
#include <cstdio>

#include "core/session.h"

int main() {
  using namespace adahealth;

  // 1. A dataset: here the bundled synthetic diabetic cohort at test
  //    scale (swap in dataset::ExamLog::Load("your.csv") for real data).
  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::TestScaleConfig())
          .Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed: %s\n",
                cohort.status().ToString().c_str());
    return 1;
  }

  // 2. A K-DB to accumulate knowledge across sessions.
  kdb::Database db;

  // 3. Run the automated analysis.
  core::AnalysisSession session(&db);
  core::SessionOptions options;
  options.dataset_id = "quickstart-cohort";
  options.optimizer.candidate_ks = {3, 4, 6, 8};
  auto result = session.Run(cohort->log, &cohort->taxonomy, options);
  if (!result.ok()) {
    std::printf("session failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect what ADA-HEALTH decided and found.
  std::printf("%s\n\n", result->summary.c_str());
  std::printf("top knowledge items:\n");
  size_t shown = 0;
  for (const core::KnowledgeItem& item : result->knowledge) {
    std::printf("  %zu. [%s, quality %.2f] %s\n", ++shown,
                item.kind.c_str(), item.quality, item.description.c_str());
    if (shown == 5) break;
  }
  return 0;
}
