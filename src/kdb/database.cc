#include "kdb/database.h"

namespace adahealth {
namespace kdb {

using common::Status;
using common::StatusOr;

std::vector<std::string> Schema::CollectionNames() {
  return {kRawDatasets,    kTransformedDatasets, kDescriptors,
          kKnowledgeItems, kSelectedKnowledge,   kFeedback};
}

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

StatusOr<Collection*> Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return common::NotFoundError("no collection named " + name);
  }
  return it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

void Database::EnsureAdaHealthSchema() {
  for (const std::string& name : Schema::CollectionNames()) {
    Collection& collection = GetOrCreate(name);
    if (name != Schema::kRawDatasets) {
      collection.CreateIndex("dataset_id");
    }
  }
}

Status Database::SaveTo(const std::string& directory) const {
  for (const auto& [name, collection] : collections_) {
    Status status = SaveCollection(*collection, directory);
    if (!status.ok()) return status;
  }
  return common::OkStatus();
}

Status Database::LoadFrom(const std::string& directory,
                          const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    auto loaded = LoadCollection(name, directory);
    if (!loaded.ok()) return loaded.status();
    collections_[name] =
        std::make_unique<Collection>(std::move(loaded).value());
  }
  return common::OkStatus();
}

}  // namespace kdb
}  // namespace adahealth
